//! Rendering of experiment results through one [`Render`] trait with
//! text, CSV and JSON backends, shaped like the paper's tables and figure
//! series.
//!
//! ```
//! use ncdrf::{Render, ReportFormat, Table1Row};
//!
//! let rows = vec![Table1Row {
//!     config: "P1L3".into(),
//!     loops_within: [88.0, 97.8, 99.7],
//!     cycles_within: [64.4, 94.9, 99.9],
//! }];
//! assert!(rows.as_slice().render(ReportFormat::Text).contains("P1L3"));
//! assert!(rows.as_slice().render(ReportFormat::Csv).starts_with("config,"));
//! assert!(rows.as_slice().render(ReportFormat::Json).starts_with("["));
//! ```

use crate::distribution::Cumulative;
use crate::experiment::{BudgetOutcome, DistributionCurve, Table1Row};
use crate::model::{ModelId, ModelRegistry};
use crate::pipeline::{LoopAnalysis, LoopEval, PipelineError, PipelineStage};
use crate::session::CacheStats;
use crate::shard::{
    CellTrajectory, GridSignature, MachineSig, Provenance, ShardCell, ShardRole, SweepShard,
};
use crate::sweep::{BudgetCell, LoopCell, PartialSweep, SweepReport};
use ncdrf_regalloc::DualPressure;
use ncdrf_spill::{SnapshotStep, TrajectorySnapshot};
use std::fmt;
use std::fmt::Write as _;

/// Output backend of [`Render`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// Fixed-width tables for terminals, shaped like the paper.
    Text,
    /// One header line plus one record per row.
    Csv,
    /// An array of objects (or an object of arrays for composites).
    Json,
}

/// A renderable experiment result.
pub trait Render {
    /// Renders into the requested format.
    fn render(&self, format: ReportFormat) -> String;
}

/// Which Figure 8/9 quantity a [`BudgetTable`] shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetMetric {
    /// Relative performance (Figure 8).
    Performance,
    /// Density of memory traffic (Figure 9).
    TrafficDensity,
}

impl BudgetMetric {
    fn header(self) -> &'static str {
        match self {
            BudgetMetric::Performance => "rel. perf",
            BudgetMetric::TrafficDensity => "density",
        }
    }
}

/// A single panel of distribution curves: static (Figure 6) or dynamic
/// (Figure 7). Rendering a `[DistributionCurve]` slice directly emits
/// both panels.
#[derive(Debug, Clone, Copy)]
pub struct DistributionPanel<'a> {
    /// The curves to render (one column per curve).
    pub curves: &'a [DistributionCurve],
    /// `true` for the cycle-weighted (Figure 7) panel.
    pub dynamic: bool,
}

/// A single-metric view of budget outcomes: performance (Figure 8) or
/// traffic density (Figure 9). Rendering a `[BudgetOutcome]` slice
/// directly emits both metrics.
#[derive(Debug, Clone, Copy)]
pub struct BudgetTable<'a> {
    /// The outcomes to render, one row each.
    pub outcomes: &'a [BudgetOutcome],
    /// The quantity shown in the value column.
    pub metric: BudgetMetric,
}

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

impl Render for [Table1Row] {
    fn render(&self, format: ReportFormat) -> String {
        match format {
            ReportFormat::Text => {
                let mut s = String::new();
                let _ = writeln!(
                    s,
                    "{:<6} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
                    "config", "loops<16", "loops<32", "loops<64", "cyc<16", "cyc<32", "cyc<64"
                );
                let _ = writeln!(s, "{}", "-".repeat(66));
                for r in self {
                    let _ = writeln!(
                        s,
                        "{:<6} | {:>7.1}% {:>7.1}% {:>7.1}% | {:>7.1}% {:>7.1}% {:>7.1}%",
                        r.config,
                        r.loops_within[0],
                        r.loops_within[1],
                        r.loops_within[2],
                        r.cycles_within[0],
                        r.cycles_within[1],
                        r.cycles_within[2],
                    );
                }
                s
            }
            ReportFormat::Csv => {
                let mut s = String::from(
                    "config,loops_16,loops_32,loops_64,cycles_16,cycles_32,cycles_64\n",
                );
                for r in self {
                    let _ = writeln!(
                        s,
                        "{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}",
                        r.config,
                        r.loops_within[0],
                        r.loops_within[1],
                        r.loops_within[2],
                        r.cycles_within[0],
                        r.cycles_within[1],
                        r.cycles_within[2],
                    );
                }
                s
            }
            ReportFormat::Json => json_array(self.iter().map(|r| {
                let mut o = JsonObject::new();
                o.string("config", &r.config);
                o.number_array("loops_within", &r.loops_within);
                o.number_array("cycles_within", &r.cycles_within);
                o.finish()
            })),
        }
    }
}

// ---------------------------------------------------------------------
// Figures 6/7 (distribution curves)
// ---------------------------------------------------------------------

impl Render for DistributionPanel<'_> {
    fn render(&self, format: ReportFormat) -> String {
        match format {
            ReportFormat::Text => {
                let mut s = String::new();
                let what = if self.dynamic { "cycles" } else { "loops" };
                let config = self
                    .curves
                    .first()
                    .map(|c| c.config.as_str())
                    .unwrap_or("-");
                let _ = writeln!(s, "cumulative % of {what} vs registers ({config})");
                let _ = write!(s, "{:>6}", "regs");
                for c in self.curves {
                    let _ = write!(s, " {:>12}", c.model.to_string());
                }
                let _ = writeln!(s);
                if let Some(first) = self.curves.first() {
                    for (i, &p) in first.static_dist.points.iter().enumerate() {
                        let _ = write!(s, "{p:>6}");
                        for c in self.curves {
                            let v = if self.dynamic {
                                c.dynamic_dist.percent[i]
                            } else {
                                c.static_dist.percent[i]
                            };
                            let _ = write!(s, " {v:>11.1}%");
                        }
                        let _ = writeln!(s);
                    }
                }
                s
            }
            // Data formats carry both panels regardless of the view.
            ReportFormat::Csv | ReportFormat::Json => self.curves.render(format),
        }
    }
}

impl Render for [DistributionCurve] {
    fn render(&self, format: ReportFormat) -> String {
        match format {
            ReportFormat::Text => {
                let static_panel = DistributionPanel {
                    curves: self,
                    dynamic: false,
                }
                .render(ReportFormat::Text);
                let dynamic_panel = DistributionPanel {
                    curves: self,
                    dynamic: true,
                }
                .render(ReportFormat::Text);
                format!("{static_panel}\n{dynamic_panel}")
            }
            ReportFormat::Csv => {
                let mut s =
                    String::from("config,latency,regs,model,static_percent,dynamic_percent\n");
                for c in self {
                    for (i, &p) in c.static_dist.points.iter().enumerate() {
                        let _ = writeln!(
                            s,
                            "{},{},{},{},{:.3},{:.3}",
                            c.config,
                            c.latency,
                            p,
                            c.model,
                            c.static_dist.percent[i],
                            c.dynamic_dist.percent[i]
                        );
                    }
                }
                s
            }
            ReportFormat::Json => json_array(self.iter().map(|c| {
                let mut o = JsonObject::new();
                o.string("config", &c.config);
                o.string("model", &c.model.to_string());
                o.integer("latency", c.latency as u128);
                o.number_array("points", &c.static_dist.points);
                o.number_array("static_percent", &c.static_dist.percent);
                o.number_array("dynamic_percent", &c.dynamic_dist.percent);
                o.finish()
            })),
        }
    }
}

// ---------------------------------------------------------------------
// Figures 8/9 (budget outcomes)
// ---------------------------------------------------------------------

impl Render for BudgetTable<'_> {
    fn render(&self, format: ReportFormat) -> String {
        match format {
            ReportFormat::Text => {
                let mut s = String::new();
                let _ = writeln!(
                    s,
                    "{:<12} {:>10} {:>10} {:>12} {:>12}",
                    "model",
                    "latency",
                    "regs",
                    self.metric.header(),
                    "spilled"
                );
                let _ = writeln!(s, "{}", "-".repeat(60));
                for o in self.outcomes {
                    let v = match self.metric {
                        BudgetMetric::Performance => o.relative_performance,
                        BudgetMetric::TrafficDensity => o.traffic_density,
                    };
                    let _ = writeln!(
                        s,
                        "{:<12} {:>10} {:>10} {:>12.4} {:>12}",
                        o.model.to_string(),
                        o.latency,
                        o.registers,
                        v,
                        o.loops_spilled
                    );
                }
                s
            }
            ReportFormat::Csv | ReportFormat::Json => self.outcomes.render(format),
        }
    }
}

impl Render for [BudgetOutcome] {
    fn render(&self, format: ReportFormat) -> String {
        match format {
            ReportFormat::Text => {
                let perf = BudgetTable {
                    outcomes: self,
                    metric: BudgetMetric::Performance,
                }
                .render(ReportFormat::Text);
                let density = BudgetTable {
                    outcomes: self,
                    metric: BudgetMetric::TrafficDensity,
                }
                .render(ReportFormat::Text);
                format!("{perf}\n{density}")
            }
            ReportFormat::Csv => {
                let mut s = String::from(
                    "config,model,latency,registers,cycles,accesses,relative_performance,traffic_density,loops_spilled\n",
                );
                for o in self {
                    let _ = writeln!(
                        s,
                        "{},{},{},{},{},{},{:.6},{:.6},{}",
                        o.config,
                        o.model,
                        o.latency,
                        o.registers,
                        o.cycles,
                        o.accesses,
                        o.relative_performance,
                        o.traffic_density,
                        o.loops_spilled
                    );
                }
                s
            }
            ReportFormat::Json => json_array(self.iter().map(|o| {
                let mut j = JsonObject::new();
                j.string("config", &o.config);
                j.string("model", &o.model.to_string());
                j.integer("latency", o.latency as u128);
                j.integer("registers", o.registers as u128);
                j.integer("cycles", o.cycles);
                j.integer("accesses", o.accesses);
                j.number("relative_performance", o.relative_performance);
                j.number("traffic_density", o.traffic_density);
                j.integer("loops_spilled", o.loops_spilled as u128);
                j.finish()
            })),
        }
    }
}

// ---------------------------------------------------------------------
// Whole sweep reports
// ---------------------------------------------------------------------

impl Render for SweepReport {
    fn render(&self, format: ReportFormat) -> String {
        match format {
            ReportFormat::Text => {
                let mut s = String::new();
                if !self.distributions.is_empty() {
                    let mut seen: Vec<&str> = Vec::new();
                    for c in &self.distributions {
                        if !seen.contains(&c.config.as_str()) {
                            seen.push(&c.config);
                        }
                    }
                    for config in seen {
                        let curves: Vec<DistributionCurve> = self
                            .distributions
                            .iter()
                            .filter(|c| c.config == config)
                            .cloned()
                            .collect();
                        let _ = writeln!(s, "{}", curves.as_slice().render(ReportFormat::Text));
                    }
                }
                if !self.outcomes.is_empty() {
                    let _ = writeln!(s, "{}", self.outcomes.as_slice().render(ReportFormat::Text));
                }
                let _ = writeln!(s, "[schedule cache: {}]", self.scheduling);
                s
            }
            ReportFormat::Csv => {
                // Two independent record shapes: emit the non-empty one,
                // or both separated by a blank line.
                let mut parts = Vec::new();
                if !self.distributions.is_empty() {
                    parts.push(self.distributions.as_slice().render(ReportFormat::Csv));
                }
                if !self.outcomes.is_empty() {
                    parts.push(self.outcomes.as_slice().render(ReportFormat::Csv));
                }
                parts.join("\n")
            }
            ReportFormat::Json => {
                let mut o = JsonObject::new();
                o.string("kind", REPORT_KIND);
                o.integer("version", REPORT_VERSION);
                o.raw(
                    "distributions",
                    &self.distributions.as_slice().render(ReportFormat::Json),
                );
                o.raw(
                    "outcomes",
                    &self.outcomes.as_slice().render(ReportFormat::Json),
                );
                o.integer("scheduling_runs", self.scheduling.misses as u128);
                o.integer("cache_hits", self.scheduling.hits as u128);
                o.integer("spill_steps", self.scheduling.spill_steps as u128);
                o.integer("trajectory_hits", self.scheduling.traj_hits as u128);
                o.integer("trajectory_resumes", self.scheduling.traj_resumes as u128);
                o.finish()
            }
        }
    }
}

impl Render for PartialSweep {
    fn render(&self, format: ReportFormat) -> String {
        match format {
            ReportFormat::Text => {
                let mut s = self.report.render(ReportFormat::Text);
                if self.errors.is_empty() {
                    let _ = writeln!(s, "[no failures]");
                } else {
                    let _ = writeln!(s, "[{} failed (machine, loop) pair(s)]", self.errors.len());
                    for e in &self.errors {
                        let _ = writeln!(s, "  - {e}");
                    }
                }
                s
            }
            // CSV stays a clean record stream; failures are not rows.
            // Callers needing them machine-readable should use JSON.
            ReportFormat::Csv => self.report.render(ReportFormat::Csv),
            ReportFormat::Json => {
                let mut o = JsonObject::new();
                o.string("kind", PARTIAL_KIND);
                o.integer("version", REPORT_VERSION);
                o.raw("report", &self.report.render(ReportFormat::Json));
                o.raw(
                    "errors",
                    &json_array(self.errors.iter().map(|e| {
                        let mut j = JsonObject::new();
                        j.string("loop", &e.loop_name);
                        j.string("error", &e.stage.to_string());
                        j.finish()
                    })),
                );
                o.finish()
            }
        }
    }
}

// ---------------------------------------------------------------------
// Sweep shards (the multi-process artifact)
// ---------------------------------------------------------------------

/// Artifact type tag of a serialized [`SweepShard`].
const SHARD_KIND: &str = "ncdrf-sweep-shard";
/// Artifact format version; bump on layout changes so stale artifacts
/// fail loudly instead of merging garbage. v3 added the artifact role
/// (shard vs heal), per-cell cache counters, and optional per-cell
/// spill-trajectory snapshots. v4 resolves model names through the
/// [`ModelRegistry`], so artifacts may carry registered non-paper
/// models; the layout is unchanged, and v3 artifacts (whose model
/// vocabulary is the four paper names) still parse — see
/// [`ModelNaming`].
const SHARD_VERSION: u128 = 4;

/// Oldest shard format version this build still reads. v3 artifacts are
/// restricted to the four paper models (the only names that existed
/// before the registry).
const SHARD_VERSION_MIN: u128 = 3;

/// Artifact type tag of a serialized [`SweepReport`] / [`PartialSweep`].
/// Report JSON predates versioning, so the parsers accept tag-less
/// legacy documents (see [`parse_sweep_report`]); tagged documents must
/// carry a supported version.
const REPORT_KIND: &str = "ncdrf-sweep-report";
/// Tag of the [`PartialSweep`] envelope.
const PARTIAL_KIND: &str = "ncdrf-partial-sweep";
/// Version written by (and accepted from) this build's report emitters.
const REPORT_VERSION: u128 = 1;

impl Render for SweepShard {
    /// `Text` is a human summary, `Csv` one record per grid cell, `Json`
    /// the full artifact [`crate::parse_sweep_shard`] reads back.
    fn render(&self, format: ReportFormat) -> String {
        match format {
            ReportFormat::Text => {
                let sig = self.signature();
                let mut s = String::new();
                let _ = writeln!(
                    s,
                    "shard {}/{} of sweep over corpus `{}` ({} machines × {} loops)",
                    self.index(),
                    self.count(),
                    sig.corpus,
                    sig.machines.len(),
                    sig.loops.len(),
                );
                let _ = writeln!(
                    s,
                    "  cells: {} evaluated, {} failed",
                    self.cell_count(),
                    self.failure_count()
                );
                let _ = writeln!(s, "  [schedule cache: {}]", self.scheduling());
                s
            }
            ReportFormat::Csv => {
                let mut s = String::from("task,machine,loop,status\n");
                let n = self.signature.loops.len().max(1) as u64;
                for c in &self.cells {
                    let machine = self
                        .signature
                        .machines
                        .get((c.task / n) as usize)
                        .map(|m| m.name.as_str())
                        .unwrap_or("-");
                    let status = match &c.outcome {
                        Ok(_) => "ok".to_owned(),
                        Err(e) => format!("failed: {}", e.stage),
                    };
                    let _ = writeln!(
                        s,
                        "{},{},{},{}",
                        c.task,
                        machine,
                        c.loop_name,
                        status.replace(',', ";")
                    );
                }
                s
            }
            ReportFormat::Json => {
                let mut o = JsonObject::new();
                o.string("kind", SHARD_KIND);
                o.integer("version", SHARD_VERSION);
                o.string(
                    "role",
                    match self.role() {
                        ShardRole::Shard => "shard",
                        ShardRole::Heal => "heal",
                    },
                );
                o.integer("index", self.index() as u128);
                o.integer("count", self.count() as u128);
                if let Some(p) = self.provenance() {
                    o.string("job", &p.job);
                    o.integer("lease", p.lease as u128);
                }
                o.raw("signature", &json_signature(self.signature()));
                o.raw("scheduling", &json_cache_stats(self.scheduling()));
                o.raw("cells", &json_array(self.cells.iter().map(json_cell)));
                o.finish()
            }
        }
    }
}

fn json_signature(sig: &GridSignature) -> String {
    let mut o = JsonObject::new();
    o.string("corpus", &sig.corpus);
    o.string("options", &sig.options);
    o.string_array("loops", &sig.loops);
    o.raw(
        "machines",
        &json_array(sig.machines.iter().map(|m| {
            let mut j = JsonObject::new();
            j.string("name", &m.name);
            j.integer("latency", m.latency as u128);
            j.integer("ports", m.ports as u128);
            j.finish()
        })),
    );
    o.string_array(
        "models",
        &sig.models.iter().map(|m| m.to_string()).collect::<Vec<_>>(),
    );
    o.number_array("points", &sig.points);
    o.number_array("budgets", &sig.budgets);
    o.finish()
}

fn json_cache_stats(stats: CacheStats) -> String {
    let mut o = JsonObject::new();
    o.integer("hits", stats.hits as u128);
    o.integer("misses", stats.misses as u128);
    o.integer("spill_steps", stats.spill_steps as u128);
    o.integer("trajectory_hits", stats.traj_hits as u128);
    o.integer("trajectory_resumes", stats.traj_resumes as u128);
    o.finish()
}

fn json_trajectory(t: &CellTrajectory) -> String {
    let mut o = JsonObject::new();
    o.string("model", &t.model.to_string());
    let snap = &t.snapshot;
    o.integer("base_regs", snap.base_regs as u128);
    o.integer("base_ii", snap.base_ii as u128);
    o.integer("base_mem_ops", snap.base_mem_ops as u128);
    o.boolean("exhausted", snap.exhausted);
    o.integer("rng", snap.rng as u128);
    o.raw(
        "steps",
        &json_array(snap.steps.iter().map(|s| {
            let mut j = JsonObject::new();
            j.string("victim", &s.victim);
            j.integer("regs", s.regs as u128);
            j.integer("ii", s.ii as u128);
            j.integer("mem_ops", s.mem_ops as u128);
            j.integer("spill_stores", s.spill_stores as u128);
            j.integer("spill_loads", s.spill_loads as u128);
            j.finish()
        })),
    );
    o.finish()
}

fn json_cell(c: &ShardCell) -> String {
    let mut o = JsonObject::new();
    o.integer("task", c.task as u128);
    o.string("loop", &c.loop_name);
    o.raw("scheduling", &json_cache_stats(c.scheduling));
    if !c.trajectories.is_empty() {
        o.raw(
            "trajectories",
            &json_array(c.trajectories.iter().map(json_trajectory)),
        );
    }
    match &c.outcome {
        Ok(cell) => {
            o.raw(
                "analyses",
                &json_array(cell.analyses.iter().map(json_analysis)),
            );
            o.raw(
                "evals",
                &json_array(cell.evals.iter().map(|b| {
                    let mut j = JsonObject::new();
                    j.raw("ideal", &json_eval(&b.ideal));
                    j.raw("rows", &json_array(b.rows.iter().map(json_eval)));
                    j.finish()
                })),
            );
        }
        Err(e) => o.string("error", &e.stage.to_string()),
    }
    o.finish()
}

fn json_analysis(a: &LoopAnalysis) -> String {
    let mut o = JsonObject::new();
    o.string("name", &a.name);
    o.string("model", &a.model.to_string());
    o.integer("ii", a.ii as u128);
    o.integer("regs", a.regs as u128);
    o.integer("max_live", a.max_live as u128);
    o.integer("iterations", a.iterations as u128);
    match &a.pressure {
        None => o.raw("pressure", "null"),
        Some(p) => {
            let mut j = JsonObject::new();
            j.integer("global", p.global as u128);
            j.integer("left", p.left as u128);
            j.integer("right", p.right as u128);
            j.integer("left_total", p.left_total as u128);
            j.integer("right_total", p.right_total as u128);
            o.raw("pressure", &j.finish());
        }
    }
    o.finish()
}

fn json_eval(e: &LoopEval) -> String {
    let mut o = JsonObject::new();
    o.string("name", &e.name);
    o.string("model", &e.model.to_string());
    o.integer("budget", e.budget as u128);
    o.integer("ii", e.ii as u128);
    o.integer("regs", e.regs as u128);
    o.boolean("fits", e.fits);
    o.integer("spilled", e.spilled as u128);
    o.integer("mem_ops", e.mem_ops as u128);
    o.integer("ports", e.ports as u128);
    o.integer("iterations", e.iterations as u128);
    o.finish()
}

impl<T: Render + ?Sized> Render for &T {
    fn render(&self, format: ReportFormat) -> String {
        (**self).render(format)
    }
}

impl<T> Render for Vec<T>
where
    [T]: Render,
{
    fn render(&self, format: ReportFormat) -> String {
        self.as_slice().render(format)
    }
}

// ---------------------------------------------------------------------
// Minimal JSON writer (the vendor serde stand-in has no serializer)
// ---------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no Infinity/NaN literals.
        "null".to_owned()
    }
}

struct JsonObject {
    body: String,
}

impl JsonObject {
    fn new() -> Self {
        JsonObject {
            body: String::from("{"),
        }
    }

    fn sep(&mut self) {
        if self.body.len() > 1 {
            self.body.push(',');
        }
    }

    fn string(&mut self, key: &str, value: &str) {
        self.sep();
        let _ = write!(
            self.body,
            "\"{}\":\"{}\"",
            json_escape(key),
            json_escape(value)
        );
    }

    fn number(&mut self, key: &str, value: f64) {
        self.sep();
        let _ = write!(self.body, "\"{}\":{}", json_escape(key), json_number(value));
    }

    /// Emits an integer exactly (counters like sweep cycle totals exceed
    /// 2^53, where `f64` formatting would round them).
    fn integer(&mut self, key: &str, value: u128) {
        self.sep();
        let _ = write!(self.body, "\"{}\":{}", json_escape(key), value);
    }

    fn boolean(&mut self, key: &str, value: bool) {
        self.sep();
        let _ = write!(self.body, "\"{}\":{}", json_escape(key), value);
    }

    fn string_array(&mut self, key: &str, values: &[String]) {
        self.sep();
        let items: Vec<String> = values
            .iter()
            .map(|v| format!("\"{}\"", json_escape(v)))
            .collect();
        let _ = write!(self.body, "\"{}\":[{}]", json_escape(key), items.join(","));
    }

    fn number_array<T: Copy + Into<f64>>(&mut self, key: &str, values: &[T]) {
        self.sep();
        let items: Vec<String> = values.iter().map(|&v| json_number(v.into())).collect();
        let _ = write!(self.body, "\"{}\":[{}]", json_escape(key), items.join(","));
    }

    fn raw(&mut self, key: &str, json: &str) {
        self.sep();
        let _ = write!(self.body, "\"{}\":{}", json_escape(key), json);
    }

    fn finish(mut self) -> String {
        self.body.push('}');
        self.body
    }
}

fn json_array(items: impl Iterator<Item = String>) -> String {
    let items: Vec<String> = items.collect();
    format!("[{}]", items.join(","))
}

// ---------------------------------------------------------------------
// Parsers (the other half of the JSON backend)
// ---------------------------------------------------------------------

/// A failure while parsing a serialized report back into its typed form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportParseError {
    /// What went wrong, with the offending key where known.
    pub message: String,
}

impl ReportParseError {
    fn new(message: impl Into<String>) -> Self {
        ReportParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ReportParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed report: {}", self.message)
    }
}

impl std::error::Error for ReportParseError {}

impl From<serde_json::Error> for ReportParseError {
    fn from(e: serde_json::Error) -> Self {
        ReportParseError::new(e.to_string())
    }
}

type Parsed<T> = Result<T, ReportParseError>;

use serde_json::Value;

fn member<'v>(v: &'v Value, key: &str) -> Parsed<&'v Value> {
    v.get(key)
        .ok_or_else(|| ReportParseError::new(format!("missing key `{key}`")))
}

fn str_member(v: &Value, key: &str) -> Parsed<String> {
    member(v, key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| ReportParseError::new(format!("`{key}` is not a string")))
}

fn u128_member(v: &Value, key: &str) -> Parsed<u128> {
    member(v, key)?
        .as_u128()
        .ok_or_else(|| ReportParseError::new(format!("`{key}` is not a non-negative integer")))
}

fn u64_member(v: &Value, key: &str) -> Parsed<u64> {
    u128_member(v, key)?
        .try_into()
        .map_err(|_| ReportParseError::new(format!("`{key}` is out of range")))
}

/// A `u64` member that defaults to zero when the key is absent — for
/// counters added to the (unversioned) report JSON after artifacts were
/// already in the wild: a pre-trajectory report parses with zeroed
/// trajectory counters instead of a bare missing-member error. (Shard
/// artifacts are versioned and fail loudly instead; see
/// [`SHARD_VERSION`].)
fn u64_member_or_zero(v: &Value, key: &str) -> Parsed<u64> {
    if v.get(key).is_none() {
        return Ok(0);
    }
    u64_member(v, key)
}

fn u32_member(v: &Value, key: &str) -> Parsed<u32> {
    u128_member(v, key)?
        .try_into()
        .map_err(|_| ReportParseError::new(format!("`{key}` is out of range")))
}

fn usize_member(v: &Value, key: &str) -> Parsed<usize> {
    u128_member(v, key)?
        .try_into()
        .map_err(|_| ReportParseError::new(format!("`{key}` is out of range")))
}

fn bool_member(v: &Value, key: &str) -> Parsed<bool> {
    member(v, key)?
        .as_bool()
        .ok_or_else(|| ReportParseError::new(format!("`{key}` is not a boolean")))
}

/// An `f64` member. `null` parses as `f64::INFINITY`: the emitter maps
/// non-finite values to `null` (JSON has no literals for them), and the
/// only non-finite quantity a report can legitimately hold is the
/// impossible-quadrant `relative_performance`, which is `+∞`.
fn f64_member(v: &Value, key: &str) -> Parsed<f64> {
    let m = member(v, key)?;
    if m.is_null() {
        return Ok(f64::INFINITY);
    }
    m.as_f64()
        .ok_or_else(|| ReportParseError::new(format!("`{key}` is not a number")))
}

fn array_member<'v>(v: &'v Value, key: &str) -> Parsed<&'v [Value]> {
    member(v, key)?
        .as_array()
        .ok_or_else(|| ReportParseError::new(format!("`{key}` is not an array")))
}

fn u32_array_member(v: &Value, key: &str) -> Parsed<Vec<u32>> {
    array_member(v, key)?
        .iter()
        .map(|item| {
            item.as_u32()
                .ok_or_else(|| ReportParseError::new(format!("`{key}` holds a non-u32 entry")))
        })
        .collect()
}

fn f64_array_member(v: &Value, key: &str) -> Parsed<Vec<f64>> {
    array_member(v, key)?
        .iter()
        .map(|item| {
            if item.is_null() {
                return Ok(f64::INFINITY);
            }
            item.as_f64()
                .ok_or_else(|| ReportParseError::new(format!("`{key}` holds a non-number entry")))
        })
        .collect()
}

fn string_array_member(v: &Value, key: &str) -> Parsed<Vec<String>> {
    array_member(v, key)?
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_owned)
                .ok_or_else(|| ReportParseError::new(format!("`{key}` holds a non-string entry")))
        })
        .collect()
}

/// How model names in a parsed document resolve to registry IDs.
///
/// v3 shard artifacts predate the registry: their model vocabulary is
/// exactly the four paper names, frozen here so a v3 artifact naming a
/// later-registered model (impossible for a genuine v3 emitter) fails
/// loudly instead of silently acquiring new semantics. Everything else
/// — v4 artifacts, report JSON, standalone grid signatures — resolves
/// through the live [`ModelRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModelNaming {
    /// The fixed four-name map of pre-registry (v3) shard artifacts.
    LegacyV3,
    /// Any model registered in this process.
    Registry,
}

impl ModelNaming {
    fn resolve(self, name: &str) -> Option<ModelId> {
        match self {
            ModelNaming::LegacyV3 => match name {
                "ideal" => Some(ModelId::IDEAL),
                "unified" => Some(ModelId::UNIFIED),
                "partitioned" => Some(ModelId::PARTITIONED),
                "swapped" => Some(ModelId::SWAPPED),
                _ => None,
            },
            ModelNaming::Registry => ModelRegistry::resolve(name),
        }
    }
}

fn model_member(v: &Value, key: &str, naming: ModelNaming) -> Parsed<ModelId> {
    let name = str_member(v, key)?;
    naming
        .resolve(&name)
        .ok_or_else(|| ReportParseError::new(format!("`{key}` names no model: `{name}`")))
}

fn curve_from(v: &Value) -> Parsed<DistributionCurve> {
    let points = u32_array_member(v, "points")?;
    Ok(DistributionCurve {
        config: str_member(v, "config")?,
        model: model_member(v, "model", ModelNaming::Registry)?,
        latency: u32_member(v, "latency")?,
        static_dist: Cumulative {
            points: points.clone(),
            percent: f64_array_member(v, "static_percent")?,
        },
        dynamic_dist: Cumulative {
            points,
            percent: f64_array_member(v, "dynamic_percent")?,
        },
    })
}

fn outcome_from(v: &Value) -> Parsed<BudgetOutcome> {
    Ok(BudgetOutcome {
        config: str_member(v, "config")?,
        model: model_member(v, "model", ModelNaming::Registry)?,
        latency: u32_member(v, "latency")?,
        registers: u32_member(v, "registers")?,
        cycles: u128_member(v, "cycles")?,
        accesses: u128_member(v, "accesses")?,
        relative_performance: f64_member(v, "relative_performance")?,
        traffic_density: f64_member(v, "traffic_density")?,
        loops_spilled: usize_member(v, "loops_spilled")?,
    })
}

fn sweep_report_from(v: &Value) -> Parsed<SweepReport> {
    Ok(SweepReport {
        distributions: array_member(v, "distributions")?
            .iter()
            .map(curve_from)
            .collect::<Parsed<_>>()?,
        outcomes: array_member(v, "outcomes")?
            .iter()
            .map(outcome_from)
            .collect::<Parsed<_>>()?,
        scheduling: CacheStats {
            hits: u64_member(v, "cache_hits")?,
            misses: u64_member(v, "scheduling_runs")?,
            spill_steps: u64_member_or_zero(v, "spill_steps")?,
            traj_hits: u64_member_or_zero(v, "trajectory_hits")?,
            traj_resumes: u64_member_or_zero(v, "trajectory_resumes")?,
        },
    })
}

/// Validates a report-family document's `kind`/`version` tags. Report
/// JSON predates versioning, so a document with **no** `kind` is
/// accepted as legacy (its absent trajectory counters back-parse as
/// zero, see [`u64_member_or_zero`]); a tagged document must carry the
/// expected kind and a version this build reads, so a future layout
/// change fails loudly instead of parsing garbage.
fn check_report_envelope(v: &Value, expected_kind: &str) -> Parsed<()> {
    if v.get("kind").is_none() {
        return Ok(()); // legacy, pre-versioning document
    }
    let kind = str_member(v, "kind")?;
    if kind != expected_kind {
        return Err(ReportParseError::new(format!(
            "not a {expected_kind} document (kind `{kind}`)"
        )));
    }
    let version = u128_member(v, "version")?;
    if version != REPORT_VERSION {
        return Err(ReportParseError::new(format!(
            "unsupported report format version {version} (this build reads {REPORT_VERSION})"
        )));
    }
    Ok(())
}

/// Parses the JSON emitted by `SweepReport`'s [`Render`] backend back
/// into the typed report.
///
/// Round-trip exact: integer counters are parsed without an `f64`
/// detour and floats re-parse to their original bit patterns (Rust's
/// `{}` float formatting is shortest-round-trip), so
/// `parse_sweep_report(&r.render(ReportFormat::Json)) == r` for any
/// report with finite floats — property-tested in
/// `tests/proptest_shard.rs`. The one non-finite value a report can
/// hold — the impossible-quadrant `+∞` `relative_performance` — emits
/// as `null` and parses back to `+∞`, so even those reports round-trip
/// to equality.
///
/// Reports are versioned ([`REPORT_KIND`]); untagged legacy documents
/// still parse, with the counters they predate zeroed.
///
/// # Errors
///
/// A [`ReportParseError`] naming the first malformed or missing key, or
/// an unsupported kind/version tag.
pub fn parse_sweep_report(json: &str) -> Parsed<SweepReport> {
    let v = serde_json::from_str(json)?;
    check_report_envelope(&v, REPORT_KIND)?;
    sweep_report_from(&v)
}

/// Parses the JSON emitted by `PartialSweep`'s [`Render`] backend.
///
/// Error entries come back with [`PipelineStage::Remote`] carrying the
/// original stage message verbatim (the structured stage is rendered to
/// text on emit), so a round-tripped partial sweep *renders* identically
/// even though the error values compare unequal to their in-process
/// originals.
///
/// # Errors
///
/// A [`ReportParseError`] naming the first malformed or missing key.
pub fn parse_partial_sweep(json: &str) -> Parsed<PartialSweep> {
    let v = serde_json::from_str(json)?;
    check_report_envelope(&v, PARTIAL_KIND)?;
    let report = member(&v, "report")?;
    check_report_envelope(report, REPORT_KIND)?;
    Ok(PartialSweep {
        report: sweep_report_from(report)?,
        errors: array_member(&v, "errors")?
            .iter()
            .map(|e| {
                Ok(PipelineError {
                    loop_name: str_member(e, "loop")?,
                    stage: PipelineStage::Remote(str_member(e, "error")?),
                })
            })
            .collect::<Parsed<_>>()?,
    })
}

fn analysis_from(v: &Value, naming: ModelNaming) -> Parsed<LoopAnalysis> {
    let pressure = member(v, "pressure")?;
    let pressure = if pressure.is_null() {
        None
    } else {
        Some(DualPressure {
            global: u32_member(pressure, "global")?,
            left: u32_member(pressure, "left")?,
            right: u32_member(pressure, "right")?,
            left_total: u32_member(pressure, "left_total")?,
            right_total: u32_member(pressure, "right_total")?,
        })
    };
    Ok(LoopAnalysis {
        name: str_member(v, "name")?,
        model: model_member(v, "model", naming)?,
        ii: u32_member(v, "ii")?,
        regs: u32_member(v, "regs")?,
        max_live: u32_member(v, "max_live")?,
        pressure,
        iterations: u64_member(v, "iterations")?,
    })
}

fn eval_from(v: &Value, naming: ModelNaming) -> Parsed<LoopEval> {
    Ok(LoopEval {
        name: str_member(v, "name")?,
        model: model_member(v, "model", naming)?,
        budget: u32_member(v, "budget")?,
        ii: u32_member(v, "ii")?,
        regs: u32_member(v, "regs")?,
        fits: bool_member(v, "fits")?,
        spilled: usize_member(v, "spilled")?,
        mem_ops: usize_member(v, "mem_ops")?,
        ports: u32_member(v, "ports")?,
        iterations: u64_member(v, "iterations")?,
    })
}

fn cache_stats_from(v: &Value) -> Parsed<CacheStats> {
    Ok(CacheStats {
        hits: u64_member(v, "hits")?,
        misses: u64_member(v, "misses")?,
        spill_steps: u64_member(v, "spill_steps")?,
        traj_hits: u64_member(v, "trajectory_hits")?,
        traj_resumes: u64_member(v, "trajectory_resumes")?,
    })
}

fn trajectory_from(v: &Value, naming: ModelNaming) -> Parsed<CellTrajectory> {
    Ok(CellTrajectory {
        model: model_member(v, "model", naming)?,
        snapshot: TrajectorySnapshot {
            base_regs: u32_member(v, "base_regs")?,
            base_ii: u32_member(v, "base_ii")?,
            base_mem_ops: usize_member(v, "base_mem_ops")?,
            steps: array_member(v, "steps")?
                .iter()
                .map(|s| {
                    Ok(SnapshotStep {
                        victim: str_member(s, "victim")?,
                        regs: u32_member(s, "regs")?,
                        ii: u32_member(s, "ii")?,
                        mem_ops: usize_member(s, "mem_ops")?,
                        spill_stores: usize_member(s, "spill_stores")?,
                        spill_loads: usize_member(s, "spill_loads")?,
                    })
                })
                .collect::<Parsed<_>>()?,
            exhausted: bool_member(v, "exhausted")?,
            rng: u64_member(v, "rng")?,
        },
    })
}

fn shard_cell_from(v: &Value, naming: ModelNaming) -> Parsed<ShardCell> {
    let loop_name = str_member(v, "loop")?;
    let outcome = if let Some(err) = v.get("error") {
        let message = err
            .as_str()
            .ok_or_else(|| ReportParseError::new("`error` is not a string"))?;
        Err(PipelineError {
            loop_name: loop_name.clone(),
            stage: PipelineStage::Remote(message.to_owned()),
        })
    } else {
        Ok(LoopCell {
            analyses: array_member(v, "analyses")?
                .iter()
                .map(|a| analysis_from(a, naming))
                .collect::<Parsed<_>>()?,
            evals: array_member(v, "evals")?
                .iter()
                .map(|b| {
                    Ok(BudgetCell {
                        ideal: eval_from(member(b, "ideal")?, naming)?,
                        rows: array_member(b, "rows")?
                            .iter()
                            .map(|r| eval_from(r, naming))
                            .collect::<Parsed<_>>()?,
                    })
                })
                .collect::<Parsed<_>>()?,
        })
    };
    let trajectories = if v.get("trajectories").is_none() {
        Vec::new()
    } else {
        array_member(v, "trajectories")?
            .iter()
            .map(|t| trajectory_from(t, naming))
            .collect::<Parsed<_>>()?
    };
    Ok(ShardCell {
        task: u64_member(v, "task")?,
        loop_name,
        scheduling: cache_stats_from(member(v, "scheduling")?)?,
        outcome,
        trajectories,
    })
}

/// Parses the JSON artifact emitted by `SweepShard`'s [`Render`] backend
/// (the file `shard_runner run` writes and `shard_runner merge` reads).
///
/// The cell payloads are all-integer, so the parsed shard merges to the
/// **bit-identical** report of its in-process original — the guarantee
/// the CI `merge-verify` job asserts across processes.
///
/// # Errors
///
/// A [`ReportParseError`] for unknown artifact kinds/versions or the
/// first malformed key.
pub fn parse_sweep_shard(json: &str) -> Parsed<SweepShard> {
    let v = serde_json::from_str(json)?;
    let kind = str_member(&v, "kind")?;
    if kind != SHARD_KIND {
        return Err(ReportParseError::new(format!(
            "not a sweep shard (kind `{kind}`, expected `{SHARD_KIND}`)"
        )));
    }
    let version = u128_member(&v, "version")?;
    if !(SHARD_VERSION_MIN..=SHARD_VERSION).contains(&version) {
        return Err(ReportParseError::new(format!(
            "unsupported shard format version {version} \
             (this build reads {SHARD_VERSION_MIN} through {SHARD_VERSION})"
        )));
    }
    // v3 artifacts predate the model registry: their names resolve
    // through the frozen four-model map, never the live registry.
    let naming = if version < SHARD_VERSION {
        ModelNaming::LegacyV3
    } else {
        ModelNaming::Registry
    };
    let role = match str_member(&v, "role")?.as_str() {
        "shard" => ShardRole::Shard,
        "heal" => ShardRole::Heal,
        other => {
            return Err(ReportParseError::new(format!(
                "`role` is neither `shard` nor `heal`: `{other}`"
            )))
        }
    };
    let signature = signature_from(member(&v, "signature")?, naming)?;
    // Provenance (farm job + lease ids) is optional metadata stamped by
    // the daemon's workers; plain `shard_runner` artifacts omit it, so
    // absence is not an error and the shard version is unchanged.
    let provenance = match v.get("job") {
        None => None,
        Some(_) => Some(Provenance {
            job: str_member(&v, "job")?,
            lease: u64_member(&v, "lease")?,
        }),
    };
    let scheduling = cache_stats_from(member(&v, "scheduling")?)?;
    let cells: Vec<ShardCell> = array_member(&v, "cells")?
        .iter()
        .map(|c| shard_cell_from(c, naming))
        .collect::<Parsed<_>>()?;
    // The shard-level counters are the per-cell sums by construction;
    // an artifact where they disagree was hand-edited or corrupted, and
    // a merge would silently misreport work — refuse it instead.
    let mut cell_sum = CacheStats::default();
    for c in &cells {
        cell_sum.absorb(c.scheduling);
    }
    if cell_sum != scheduling {
        return Err(ReportParseError::new(
            "shard-level cache counters disagree with the per-cell sums",
        ));
    }
    let mut shard = SweepShard::assemble_parts(
        signature,
        u32_member(&v, "index")?,
        u32_member(&v, "count")?,
        role,
        scheduling,
        cells,
    );
    if let Some(p) = provenance {
        shard = shard.with_provenance(p);
    }
    Ok(shard)
}

/// Parses a [`GridSignature`] from the JSON object layout shard
/// artifacts embed under their `signature` key — the standalone wire
/// form the farm daemon ships in lease offers.
///
/// # Errors
///
/// A [`ReportParseError`] on malformed JSON or the first malformed key.
pub fn parse_grid_signature(json: &str) -> Parsed<GridSignature> {
    signature_from(&serde_json::from_str(json)?, ModelNaming::Registry)
}

/// Renders a [`GridSignature`] as the JSON object
/// [`parse_grid_signature`] reads back — byte-identical to the
/// `signature` member of a shard artifact.
pub fn render_grid_signature(sig: &GridSignature) -> String {
    json_signature(sig)
}

fn signature_from(sig: &Value, naming: ModelNaming) -> Parsed<GridSignature> {
    let machines = array_member(sig, "machines")?
        .iter()
        .map(|m| {
            Ok(MachineSig {
                name: str_member(m, "name")?,
                latency: u32_member(m, "latency")?,
                ports: u32_member(m, "ports")?,
            })
        })
        .collect::<Parsed<_>>()?;
    let models = string_array_member(sig, "models")?
        .iter()
        .map(|name| {
            naming
                .resolve(name)
                .ok_or_else(|| ReportParseError::new(format!("`models` names no model: `{name}`")))
        })
        .collect::<Parsed<_>>()?;
    Ok(GridSignature {
        corpus: str_member(sig, "corpus")?,
        loops: string_array_member(sig, "loops")?,
        machines,
        models,
        points: u32_array_member(sig, "points")?,
        budgets: u32_array_member(sig, "budgets")?,
        options: str_member(sig, "options")?,
    })
}

// ---------------------------------------------------------------------
// Deprecated pre-Render shims
// ---------------------------------------------------------------------

/// Renders Table 1 in the paper's layout.
#[deprecated(note = "use `Render::render(ReportFormat::Text)` on the rows")]
pub fn render_table1(rows: &[Table1Row]) -> String {
    rows.render(ReportFormat::Text)
}

/// Renders Table 1 as CSV.
#[deprecated(note = "use `Render::render(ReportFormat::Csv)` on the rows")]
pub fn csv_table1(rows: &[Table1Row]) -> String {
    rows.render(ReportFormat::Csv)
}

/// Renders one Figure 6/7 panel; `dynamic` selects the cycle-weighted
/// panel (Figure 7).
#[deprecated(note = "use `DistributionPanel { curves, dynamic }.render(ReportFormat::Text)`")]
pub fn render_distribution(curves: &[DistributionCurve], dynamic: bool) -> String {
    DistributionPanel { curves, dynamic }.render(ReportFormat::Text)
}

/// Renders Figure 6/7 curves as CSV.
#[deprecated(note = "use `Render::render(ReportFormat::Csv)` on the curves")]
pub fn csv_distribution(curves: &[DistributionCurve]) -> String {
    curves.render(ReportFormat::Csv)
}

/// Renders Figure 8 (performance) or Figure 9 (traffic density) bars.
#[deprecated(note = "use `BudgetTable { outcomes, metric }.render(ReportFormat::Text)`")]
pub fn render_budget_outcomes(outcomes: &[BudgetOutcome], metric: BudgetMetric) -> String {
    BudgetTable { outcomes, metric }.render(ReportFormat::Text)
}

/// Renders Figure 8/9 outcomes as CSV.
#[deprecated(note = "use `Render::render(ReportFormat::Csv)` on the outcomes")]
pub fn csv_budget_outcomes(outcomes: &[BudgetOutcome]) -> String {
    outcomes.render(ReportFormat::Csv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::Cumulative;
    use crate::model::Model;

    fn sample_curves() -> Vec<DistributionCurve> {
        let dist = Cumulative {
            points: vec![16, 32],
            percent: vec![50.0, 75.0],
        };
        vec![DistributionCurve {
            config: "C2L3".into(),
            model: Model::Unified.into(),
            latency: 3,
            static_dist: dist.clone(),
            dynamic_dist: dist,
        }]
    }

    fn sample_outcomes() -> Vec<BudgetOutcome> {
        vec![BudgetOutcome {
            config: "C2L6".into(),
            model: Model::Swapped.into(),
            latency: 6,
            registers: 32,
            cycles: 1000,
            accesses: 300,
            relative_performance: 0.87,
            traffic_density: 0.15,
            loops_spilled: 12,
        }]
    }

    #[test]
    fn table1_renders_all_formats() {
        let rows = vec![Table1Row {
            config: "P1L3".into(),
            loops_within: [88.0, 97.8, 99.7],
            cycles_within: [64.4, 94.9, 99.9],
        }];
        let text = rows.render(ReportFormat::Text);
        assert!(text.contains("P1L3"));
        assert!(text.contains("97.8%"));
        let csv = rows.render(ReportFormat::Csv);
        assert!(csv.lines().count() == 2);
        assert!(csv.contains("P1L3,88.00"));
        let json = rows.render(ReportFormat::Json);
        assert!(json.contains("\"config\":\"P1L3\""));
        assert!(json.contains("\"loops_within\":[88,97.8,99.7]"));
    }

    #[test]
    fn distribution_renders_points_and_models() {
        let curves = sample_curves();
        let text = DistributionPanel {
            curves: &curves,
            dynamic: false,
        }
        .render(ReportFormat::Text);
        assert!(text.contains("unified"));
        assert!(text.contains("16"));
        // The slice renderer emits both panels.
        let both = curves.render(ReportFormat::Text);
        assert!(both.contains("% of loops"));
        assert!(both.contains("% of cycles"));
        let csv = curves.render(ReportFormat::Csv);
        assert!(csv.contains("C2L3,3,16,unified,50.000,50.000"));
        let json = curves.render(ReportFormat::Json);
        assert!(json.contains("\"static_percent\":[50,75]"));
    }

    #[test]
    fn budget_outcomes_render_both_metrics() {
        let o = sample_outcomes();
        let perf = BudgetTable {
            outcomes: &o,
            metric: BudgetMetric::Performance,
        }
        .render(ReportFormat::Text);
        assert!(perf.contains("0.8700"));
        let dens = BudgetTable {
            outcomes: &o,
            metric: BudgetMetric::TrafficDensity,
        }
        .render(ReportFormat::Text);
        assert!(dens.contains("0.1500"));
        let csv = o.render(ReportFormat::Csv);
        assert!(csv.contains("C2L6,swapped,6,32,1000,300,0.870000,0.150000,12"));
        let json = o.render(ReportFormat::Json);
        assert!(json.contains("\"relative_performance\":0.87"));
    }

    #[test]
    fn sweep_report_renders_every_format() {
        let report = SweepReport {
            distributions: sample_curves(),
            outcomes: sample_outcomes(),
            scheduling: crate::session::CacheStats {
                hits: 9,
                misses: 3,
                traj_hits: 2,
                traj_resumes: 1,
                spill_steps: 5,
            },
        };
        let text = report.render(ReportFormat::Text);
        assert!(text.contains("% of loops"));
        assert!(text.contains("rel. perf"));
        assert!(text.contains("3 runs, 9 hits"));
        assert!(text.contains("5 steps, 2 hits, 1 resumes"));
        let csv = report.render(ReportFormat::Csv);
        assert!(csv.contains("static_percent"));
        assert!(csv.contains("traffic_density"));
        let json = report.render(ReportFormat::Json);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"scheduling_runs\":3"));
    }

    #[test]
    fn report_json_without_trajectory_counters_parses_with_zeroes() {
        // Untagged legacy reports predate both the version tag and the
        // trajectory counters; they must parse (counters zeroed), not
        // die on a bare missing-member error.
        let report = SweepReport {
            distributions: sample_curves(),
            outcomes: sample_outcomes(),
            scheduling: crate::session::CacheStats {
                hits: 9,
                misses: 3,
                ..Default::default()
            },
        };
        let json = report.render(ReportFormat::Json);
        let legacy = json
            .replace(
                ",\"spill_steps\":0,\"trajectory_hits\":0,\"trajectory_resumes\":0",
                "",
            )
            .replace("\"kind\":\"ncdrf-sweep-report\",\"version\":1,", "");
        assert_ne!(legacy, json, "the legacy rewrite must strip the keys");
        let parsed = crate::report::parse_sweep_report(&legacy).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn report_json_is_versioned_and_rejects_foreign_documents() {
        let report = SweepReport {
            distributions: sample_curves(),
            outcomes: sample_outcomes(),
            scheduling: crate::session::CacheStats::default(),
        };
        let json = report.render(ReportFormat::Json);
        assert!(json.starts_with("{\"kind\":\"ncdrf-sweep-report\",\"version\":1,"));
        assert_eq!(crate::report::parse_sweep_report(&json).unwrap(), report);

        // A tagged document of the wrong kind or a future version must
        // fail loudly, not parse garbage.
        let wrong_kind = json.replace("ncdrf-sweep-report", "ncdrf-sweep-shard");
        let err = crate::report::parse_sweep_report(&wrong_kind).unwrap_err();
        assert!(err.to_string().contains("kind"), "{err}");
        let future = json.replace("\"version\":1,", "\"version\":999,");
        let err = crate::report::parse_sweep_report(&future).unwrap_err();
        assert!(err.to_string().contains("version 999"), "{err}");

        // The partial-sweep envelope is tagged the same way.
        let partial = PartialSweep {
            report,
            errors: Vec::new(),
        };
        let pjson = partial.render(ReportFormat::Json);
        assert!(pjson.starts_with("{\"kind\":\"ncdrf-partial-sweep\",\"version\":1,"));
        assert_eq!(crate::report::parse_partial_sweep(&pjson).unwrap(), partial);
        let err = crate::report::parse_partial_sweep(
            &pjson.replace("ncdrf-partial-sweep", "something-else"),
        )
        .unwrap_err();
        assert!(err.to_string().contains("kind"), "{err}");
    }

    #[test]
    fn non_finite_relative_performance_round_trips_as_null() {
        // PR 1's cycles==0 guard makes `relative_performance` +∞ in the
        // impossible quadrant; JSON has no literal for it, so the
        // emitter writes `null` and the parsers read it back as +∞ —
        // the report round-trips to equality, not to a parse error.
        let mut outcomes = sample_outcomes();
        outcomes[0].relative_performance = f64::INFINITY;
        let report = SweepReport {
            distributions: Vec::new(),
            outcomes,
            scheduling: crate::session::CacheStats::default(),
        };
        let json = report.render(ReportFormat::Json);
        assert!(
            json.contains("\"relative_performance\":null"),
            "non-finite floats must emit as null: {json}"
        );
        let parsed = crate::report::parse_sweep_report(&json).unwrap();
        assert!(parsed.outcomes[0].relative_performance.is_infinite());
        assert_eq!(parsed, report);
        // And the re-rendered bytes are identical (the round trip is a
        // fixed point, so artifacts can be re-emitted safely).
        assert_eq!(parsed.render(ReportFormat::Json), json);

        // The partial-sweep envelope carries the same value unscathed.
        let partial = PartialSweep {
            report: report.clone(),
            errors: vec![crate::PipelineError::panic("hydro", "boom")],
        };
        let parsed =
            crate::report::parse_partial_sweep(&partial.render(ReportFormat::Json)).unwrap();
        assert!(parsed.report.outcomes[0].relative_performance.is_infinite());
        assert_eq!(parsed.report, report);
    }

    #[test]
    fn partial_sweep_renders_failures_by_name() {
        let partial = PartialSweep {
            report: SweepReport {
                distributions: sample_curves(),
                outcomes: sample_outcomes(),
                scheduling: crate::session::CacheStats {
                    hits: 4,
                    misses: 2,
                    ..Default::default()
                },
            },
            errors: vec![crate::PipelineError::panic("hydro", "boom")],
        };
        let text = partial.render(ReportFormat::Text);
        assert!(text.contains("1 failed (machine, loop) pair(s)"));
        assert!(text.contains("loop `hydro`: worker panicked: boom"));
        let json = partial.render(ReportFormat::Json);
        assert!(json.contains("\"loop\":\"hydro\""));
        assert!(json.contains("\"report\":{"));
        // CSV keeps the record stream parseable.
        assert_eq!(
            partial.render(ReportFormat::Csv),
            partial.report.render(ReportFormat::Csv)
        );
        let complete = PartialSweep {
            report: SweepReport::default(),
            errors: Vec::new(),
        };
        assert!(complete
            .render(ReportFormat::Text)
            .contains("[no failures]"));
    }

    #[test]
    fn legacy_v3_naming_is_frozen_to_the_paper_models() {
        // A v3 artifact can only name the four paper models; the map is
        // frozen, so registering new models never re-interprets old
        // artifacts.
        for (name, id) in [
            ("ideal", ModelId::IDEAL),
            ("unified", ModelId::UNIFIED),
            ("partitioned", ModelId::PARTITIONED),
            ("swapped", ModelId::SWAPPED),
        ] {
            assert_eq!(ModelNaming::LegacyV3.resolve(name), Some(id));
        }
        assert_eq!(ModelNaming::LegacyV3.resolve("port-limited"), None);
        assert_eq!(ModelNaming::LegacyV3.resolve("compressed"), None);
        assert_eq!(
            ModelNaming::Registry.resolve("port-limited"),
            Some(ModelId::PORT_LIMITED)
        );
    }

    #[test]
    fn json_escapes_control_and_quote_characters() {
        let mut o = JsonObject::new();
        o.string("k\"ey", "va\\l\nue\t");
        let s = o.finish();
        assert_eq!(s, "{\"k\\\"ey\":\"va\\\\l\\nue\\t\"}");
        assert_eq!(json_number(f64::INFINITY), "null");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_delegate() {
        let curves = sample_curves();
        assert_eq!(
            render_distribution(&curves, true),
            DistributionPanel {
                curves: &curves,
                dynamic: true
            }
            .render(ReportFormat::Text)
        );
        assert_eq!(csv_distribution(&curves), curves.render(ReportFormat::Csv));
    }
}
