//! Plain-text and CSV rendering of experiment results, shaped like the
//! paper's tables and figure series.

use crate::experiment::{BudgetOutcome, DistributionCurve, Table1Row};
use std::fmt::Write as _;

/// Renders Table 1 in the paper's layout: one row per configuration, one
/// column pair (loops %, cycles %) per register budget.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<6} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "config", "loops<16", "loops<32", "loops<64", "cyc<16", "cyc<32", "cyc<64"
    );
    let _ = writeln!(s, "{}", "-".repeat(66));
    for r in rows {
        let _ = writeln!(
            s,
            "{:<6} | {:>7.1}% {:>7.1}% {:>7.1}% | {:>7.1}% {:>7.1}% {:>7.1}%",
            r.config,
            r.loops_within[0],
            r.loops_within[1],
            r.loops_within[2],
            r.cycles_within[0],
            r.cycles_within[1],
            r.cycles_within[2],
        );
    }
    s
}

/// Renders Table 1 as CSV.
pub fn csv_table1(rows: &[Table1Row]) -> String {
    let mut s = String::from("config,loops_16,loops_32,loops_64,cycles_16,cycles_32,cycles_64\n");
    for r in rows {
        let _ = writeln!(
            s,
            "{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}",
            r.config,
            r.loops_within[0],
            r.loops_within[1],
            r.loops_within[2],
            r.cycles_within[0],
            r.cycles_within[1],
            r.cycles_within[2],
        );
    }
    s
}

/// Renders one Figure 6/7 panel: rows are sampled register counts, columns
/// are models; `dynamic` selects the cycle-weighted panel (Figure 7).
pub fn render_distribution(curves: &[DistributionCurve], dynamic: bool) -> String {
    let mut s = String::new();
    let what = if dynamic { "cycles" } else { "loops" };
    let lat = curves.first().map(|c| c.latency).unwrap_or(0);
    let _ = writeln!(s, "cumulative % of {what} vs registers (latency {lat})");
    let _ = write!(s, "{:>6}", "regs");
    for c in curves {
        let _ = write!(s, " {:>12}", c.model.to_string());
    }
    let _ = writeln!(s);
    if let Some(first) = curves.first() {
        for (i, &p) in first.static_dist.points.iter().enumerate() {
            let _ = write!(s, "{p:>6}");
            for c in curves {
                let v = if dynamic {
                    c.dynamic_dist.percent[i]
                } else {
                    c.static_dist.percent[i]
                };
                let _ = write!(s, " {v:>11.1}%");
            }
            let _ = writeln!(s);
        }
    }
    s
}

/// Renders Figure 6/7 curves as CSV (`regs,model,static,dynamic`).
pub fn csv_distribution(curves: &[DistributionCurve]) -> String {
    let mut s = String::from("latency,regs,model,static_percent,dynamic_percent\n");
    for c in curves {
        for (i, &p) in c.static_dist.points.iter().enumerate() {
            let _ = writeln!(
                s,
                "{},{},{},{:.3},{:.3}",
                c.latency, p, c.model, c.static_dist.percent[i], c.dynamic_dist.percent[i]
            );
        }
    }
    s
}

/// Renders Figure 8 (performance) or Figure 9 (traffic density) bars for a
/// set of configurations.
pub fn render_budget_outcomes(outcomes: &[BudgetOutcome], metric: BudgetMetric) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:>10} {:>10} {:>12} {:>12}",
        "model", "latency", "regs", metric.header(), "spilled"
    );
    let _ = writeln!(s, "{}", "-".repeat(60));
    for o in outcomes {
        let v = match metric {
            BudgetMetric::Performance => o.relative_performance,
            BudgetMetric::TrafficDensity => o.traffic_density,
        };
        let _ = writeln!(
            s,
            "{:<12} {:>10} {:>10} {:>12.4} {:>12}",
            o.model.to_string(),
            o.latency,
            o.registers,
            v,
            o.loops_spilled
        );
    }
    s
}

/// Which Figure 8/9 quantity to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetMetric {
    /// Relative performance (Figure 8).
    Performance,
    /// Density of memory traffic (Figure 9).
    TrafficDensity,
}

impl BudgetMetric {
    fn header(self) -> &'static str {
        match self {
            BudgetMetric::Performance => "rel. perf",
            BudgetMetric::TrafficDensity => "density",
        }
    }
}

/// Renders Figure 8/9 outcomes as CSV.
pub fn csv_budget_outcomes(outcomes: &[BudgetOutcome]) -> String {
    let mut s = String::from(
        "model,latency,registers,cycles,accesses,relative_performance,traffic_density,loops_spilled\n",
    );
    for o in outcomes {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{:.6},{:.6},{}",
            o.model,
            o.latency,
            o.registers,
            o.cycles,
            o.accesses,
            o.relative_performance,
            o.traffic_density,
            o.loops_spilled
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::Cumulative;
    use crate::model::Model;

    fn sample_curves() -> Vec<DistributionCurve> {
        let dist = Cumulative {
            points: vec![16, 32],
            percent: vec![50.0, 75.0],
        };
        vec![DistributionCurve {
            model: Model::Unified,
            latency: 3,
            static_dist: dist.clone(),
            dynamic_dist: dist,
        }]
    }

    #[test]
    fn table1_renders_all_rows() {
        let rows = vec![Table1Row {
            config: "P1L3".into(),
            loops_within: [88.0, 97.8, 99.7],
            cycles_within: [64.4, 94.9, 99.9],
        }];
        let text = render_table1(&rows);
        assert!(text.contains("P1L3"));
        assert!(text.contains("97.8%"));
        let csv = csv_table1(&rows);
        assert!(csv.lines().count() == 2);
        assert!(csv.contains("P1L3,88.00"));
    }

    #[test]
    fn distribution_renders_points_and_models() {
        let text = render_distribution(&sample_curves(), false);
        assert!(text.contains("unified"));
        assert!(text.contains("16"));
        let csv = csv_distribution(&sample_curves());
        assert!(csv.contains("3,16,unified,50.000,50.000"));
    }

    #[test]
    fn budget_outcomes_render_both_metrics() {
        let o = vec![BudgetOutcome {
            model: Model::Swapped,
            latency: 6,
            registers: 32,
            cycles: 1000,
            accesses: 300,
            relative_performance: 0.87,
            traffic_density: 0.15,
            loops_spilled: 12,
        }];
        let perf = render_budget_outcomes(&o, BudgetMetric::Performance);
        assert!(perf.contains("0.8700"));
        let dens = render_budget_outcomes(&o, BudgetMetric::TrafficDensity);
        assert!(dens.contains("0.1500"));
        let csv = csv_budget_outcomes(&o);
        assert!(csv.contains("swapped,6,32,1000,300,0.870000,0.150000,12"));
    }
}
