//! The [`Session`] experiment driver: schedule each loop **once**, derive
//! every model's result from the cached base schedule.
//!
//! The paper's experiments compare the same scheduled loop under four
//! register-file models (Ideal / Unified / Partitioned / Swapped), across
//! several register budgets. Modulo scheduling dominates the pipeline
//! cost, yet it depends only on `(loop, machine)` — not on the model or
//! the budget. A `Session` owns one machine and a per-loop cache of base
//! schedules (plus their lifetimes), so a four-model comparison schedules
//! once instead of four times:
//!
//! ```
//! use ncdrf::{Model, Session};
//! use ncdrf::corpus::kernels;
//! use ncdrf::machine::Machine;
//!
//! # fn main() -> Result<(), ncdrf::PipelineError> {
//! let session = Session::new(Machine::clustered(3, 1));
//! let l = kernels::livermore::hydro();
//! let unified = session.analyze(&l, Model::Unified)?;
//! let swapped = session.analyze(&l, Model::Swapped)?; // cache hit: no rescheduling
//! assert!(swapped.regs <= unified.regs);
//! assert_eq!(session.cache_stats().hits, 1);
//! # Ok(())
//! # }
//! ```
//!
//! Sessions are `Sync`: corpus-level sweeps run loops in parallel against
//! one shared cache (see [`Session::analyze_corpus`]).

use crate::certify::CellCertifier;
use crate::model::{ModelId, RequirementCtx};
use crate::pipeline::{
    eval_from_spill, requirement, LoopAnalysis, LoopEval, PipelineError, PipelineOptions,
    PipelineStage,
};
use ncdrf_corpus::Corpus;
use ncdrf_ddg::Loop;
use ncdrf_machine::{Machine, MachineError};
use ncdrf_regalloc::{allocate_dual, allocate_unified, classify, lifetimes, max_live, Lifetime};
use ncdrf_sched::{modulo_schedule_with, Schedule};
use ncdrf_spill::{SpillTrajectory, TrajectorySnapshot};
use ncdrf_swap::swap_pass_with;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-(loop, model) spill trajectories, individually locked so distinct
/// pairs extend concurrently while same-pair evaluations serialise.
type TrajectoryCache = Mutex<HashMap<(String, ModelId), Arc<Mutex<SpillTrajectory>>>>;

/// Persisted trajectory snapshots imported from shard artifacts, served
/// lazily (see [`Session::evaluate`]).
type SnapshotCache = Mutex<HashMap<(String, ModelId), Arc<TrajectorySnapshot>>>;

/// One `(loop, model)` spill trajectory exported from — or to be
/// imported into — a session's trajectory cache. This is the unit a
/// `SweepShard` (format v3) persists so re-runs at new budgets resume
/// the recorded descents across processes.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryExport {
    /// Name of the loop the trajectory belongs to.
    pub loop_name: String,
    /// The model whose requirement function drove the descent.
    pub model: ModelId,
    /// The serializable checkpoint record.
    pub snapshot: TrajectorySnapshot,
}

/// A loop's cached model-independent artifacts: the base modulo schedule
/// and its lifetimes.
#[derive(Debug, Clone)]
pub struct BaseSchedule {
    /// The base (pre-swap, pre-spill) modulo schedule.
    pub sched: Schedule,
    /// Value lifetimes of the base schedule.
    pub lifetimes: Vec<Lifetime>,
}

/// Hit/miss counters of a session's schedule and spill-trajectory
/// caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Schedule requests served from the cache — base-schedule lookups
    /// plus post-swap lookups that skipped a rerun of the swap pass.
    pub hits: u64,
    /// Base requests that ran the scheduler.
    pub misses: u64,
    /// Budgeted evaluations served **entirely** from an existing spill
    /// trajectory's checkpoints — no spill step was recomputed and no
    /// per-budget escalation fallback ran.
    pub traj_hits: u64,
    /// Budgeted evaluations that *resumed* an existing trajectory:
    /// extension started from the deepest prior checkpoint instead of
    /// respilling from zero.
    pub traj_resumes: u64,
    /// Spill steps (victim selection + rewrite + reschedule +
    /// allocation) actually computed. Without trajectory reuse a
    /// multi-budget sweep pays this once **per budget**; with it, once
    /// per `(loop, model)` — the `sweep_parallel` bench counter-asserts
    /// the saving.
    pub spill_steps: u64,
}

impl CacheStats {
    /// Accumulates another counter set (used when summing sessions,
    /// shards and merged reports — all five counters are per-cell and
    /// therefore sum exactly across any partition of the grid).
    pub fn absorb(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.traj_hits += other.traj_hits;
        self.traj_resumes += other.traj_resumes;
        self.spill_steps += other.spill_steps;
    }
}

/// The one-line summary every report and figure binary prints (pinned
/// by the golden text fixtures) — one source of truth for the five
/// counters.
impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} runs, {} hits | spill trajectories: {} steps, {} hits, {} resumes",
            self.misses, self.hits, self.spill_steps, self.traj_hits, self.traj_resumes
        )
    }
}

/// An experiment session over one machine: a schedule cache plus the
/// pipeline options shared by every analysis/evaluation it runs.
///
/// Loops are keyed by name; corpora keep names unique. Results are
/// bit-identical to the uncached per-call pipeline ([`crate::analyze`] /
/// [`crate::evaluate`]) because base scheduling is deterministic for a
/// given `(loop, machine, options)`.
#[derive(Debug)]
pub struct Session {
    machine: Machine,
    opts: PipelineOptions,
    cache: Mutex<HashMap<String, Arc<BaseSchedule>>>,
    /// Post-swap variants of cached base schedules, filled lazily the
    /// first time a loop is examined under [`Model::Swapped`].
    swapped: Mutex<HashMap<String, Arc<BaseSchedule>>>,
    /// Per-(loop, model) register requirements of the cached schedules.
    /// Budget-independent, so a multi-budget sweep allocates once.
    reqs: Mutex<HashMap<(String, ModelId), u32>>,
    /// Per-(loop, model) spill trajectories: the §5.4 descent computed
    /// once, checkpointed, and resumed by every budget that needs it
    /// (see [`Session::evaluate`]). The two-level locking lets distinct
    /// `(loop, model)` pairs extend their trajectories concurrently.
    trajectories: TrajectoryCache,
    /// Imported (persisted) trajectory snapshots, keyed like the live
    /// cache. Served directly while a recorded checkpoint answers the
    /// budget; *materialised* into `trajectories` (verified replay) the
    /// first time a budget needs the descent extended.
    imported: SnapshotCache,
    /// Optional independent validator: when set, every analysis and
    /// evaluation this session returns — and every checkpoint a snapshot
    /// replay restores — is re-certified from first principles, and a
    /// violation fails the cell with [`PipelineStage::Certify`].
    certifier: Option<Arc<dyn CellCertifier>>,
    hits: AtomicU64,
    misses: AtomicU64,
    traj_hits: AtomicU64,
    traj_resumes: AtomicU64,
    spill_steps: AtomicU64,
}

impl Session {
    /// Creates a session for `machine` with default [`PipelineOptions`].
    pub fn new(machine: Machine) -> Self {
        Session {
            machine,
            opts: PipelineOptions::default(),
            cache: Mutex::new(HashMap::new()),
            swapped: Mutex::new(HashMap::new()),
            reqs: Mutex::new(HashMap::new()),
            trajectories: Mutex::new(HashMap::new()),
            imported: Mutex::new(HashMap::new()),
            certifier: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            traj_hits: AtomicU64::new(0),
            traj_resumes: AtomicU64::new(0),
            spill_steps: AtomicU64::new(0),
        }
    }

    /// Replaces the session's pipeline options (builder style).
    pub fn options(mut self, opts: PipelineOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Attaches an independent certifier (builder style): every
    /// analysis and evaluation this session returns is re-validated
    /// against the paper's constraints, imported-snapshot evaluations
    /// take the full replay path so each restored checkpoint is
    /// certified, and any violation fails the cell with
    /// [`PipelineStage::Certify`]. Scalar results and
    /// [`CacheStats`] counters are unchanged by certification — only
    /// violations are observable.
    pub fn certify(mut self, certifier: Arc<dyn CellCertifier>) -> Self {
        self.certifier = Some(certifier);
        self
    }

    /// The attached certifier, if any.
    pub fn certifier(&self) -> Option<&Arc<dyn CellCertifier>> {
        self.certifier.as_ref()
    }

    /// The session's machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The session's pipeline options.
    pub fn pipeline_options(&self) -> &PipelineOptions {
        &self.opts
    }

    /// Cache hit/miss counters so far — schedule caches *and* the spill
    /// trajectory cache.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            traj_hits: self.traj_hits.load(Ordering::Relaxed),
            traj_resumes: self.traj_resumes.load(Ordering::Relaxed),
            spill_steps: self.spill_steps.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached schedule **and** every cached spill trajectory
    /// (live and imported; counters are kept).
    pub fn clear_cache(&self) {
        self.cache.lock().clear();
        self.swapped.lock().clear();
        self.reqs.lock().clear();
        self.trajectories.lock().clear();
        self.imported.lock().clear();
    }

    /// Serializes the session's spill-trajectory cache: every live
    /// trajectory's checkpoint record plus every imported snapshot not
    /// yet shadowed by a live descent, sorted by `(loop, model)` so
    /// artifacts carrying the export are byte-stable.
    ///
    /// Importing the result into a fresh session (of the same machine
    /// and options) makes that session resume the recorded descents —
    /// across budgets and across processes — instead of respilling from
    /// zero; see [`Session::import_trajectories`].
    pub fn export_trajectories(&self) -> Vec<TrajectoryExport> {
        let mut by_key: HashMap<(String, ModelId), TrajectorySnapshot> = self
            .imported
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), (**v).clone()))
            .collect();
        for (k, v) in self.trajectories.lock().iter() {
            by_key.insert(k.clone(), v.lock().snapshot());
        }
        let mut out: Vec<TrajectoryExport> = by_key
            .into_iter()
            .map(|((loop_name, model), snapshot)| TrajectoryExport {
                loop_name,
                model,
                snapshot,
            })
            .collect();
        // `ModelId` orders by registration index, which reproduces the old
        // `Model::all()` rank for the paper four — export listings stay
        // byte-stable across the registry redesign.
        out.sort_by(|a, b| (a.loop_name.as_str(), a.model).cmp(&(b.loop_name.as_str(), b.model)));
        out
    }

    /// Seeds the session's trajectory cache with persisted snapshots
    /// (typically parsed out of a shard artifact). Snapshots are served
    /// lazily: a budget a recorded checkpoint fits is answered from the
    /// record alone, and the first budget that needs the descent
    /// extended triggers a verified replay (see
    /// [`SpillTrajectory::replay`]) before resuming — so a stale or
    /// foreign snapshot fails loudly at that point instead of silently
    /// changing results. Live trajectories always take precedence over
    /// imports for the same `(loop, model)`.
    ///
    /// Snapshots are budget-independent; the caller is responsible for
    /// importing only snapshots recorded on this session's machine and
    /// pipeline options (`Sweep::reissue` checks this at the artifact
    /// level).
    pub fn import_trajectories<I: IntoIterator<Item = TrajectoryExport>>(&self, imports: I) {
        let mut map = self.imported.lock();
        for t in imports {
            map.insert((t.loop_name, t.model), Arc::new(t.snapshot));
        }
    }

    fn fail(l: &Loop, stage: impl Into<PipelineStage>) -> PipelineError {
        PipelineError::new(l.name(), stage)
    }

    /// The cached base schedule of `l`, scheduling it on a miss.
    ///
    /// Scheduling runs outside the cache lock, so parallel corpus sweeps
    /// schedule distinct loops concurrently. If two threads race on the
    /// same loop the first insert wins (both results are identical —
    /// scheduling is deterministic).
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures, naming the loop.
    pub fn base(&self, l: &Loop) -> Result<Arc<BaseSchedule>, PipelineError> {
        if let Some(hit) = self.cache.lock().get(l.name()) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let sched = modulo_schedule_with(l, &self.machine, self.opts.spill.scheduler)
            .map_err(|e| Self::fail(l, e))?;
        let lts = lifetimes(l, &self.machine, &sched).map_err(|e| Self::fail(l, e))?;
        let base = Arc::new(BaseSchedule {
            sched,
            lifetimes: lts,
        });
        Ok(self
            .cache
            .lock()
            .entry(l.name().to_owned())
            .or_insert(base)
            .clone())
    }

    /// The cached post-swap schedule of `l`: the base schedule cloned and
    /// run through the greedy swap pass once, with its lifetimes. Every
    /// [`Model::Swapped`] analysis/evaluation shares this single run (the
    /// pass is deterministic and idempotent).
    ///
    /// # Errors
    ///
    /// Propagates scheduling and machine failures, naming the loop.
    pub fn swapped_base(&self, l: &Loop) -> Result<Arc<BaseSchedule>, PipelineError> {
        if let Some(hit) = self.swapped.lock().get(l.name()) {
            // A swapped-cache hit is saved work (scheduling *and* the swap
            // pass), so it counts toward `CacheStats::hits` like a base
            // hit; omitting it under-reported reuse for `Model::Swapped`.
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        let base = self.base(l)?;
        let mut sched = base.sched.clone();
        swap_pass_with(l, &self.machine, &mut sched, self.opts.swap)
            .map_err(|e| Self::fail(l, e))?;
        let lts = lifetimes(l, &self.machine, &sched).map_err(|e| Self::fail(l, e))?;
        let entry = Arc::new(BaseSchedule {
            sched,
            lifetimes: lts,
        });
        Ok(self
            .swapped
            .lock()
            .entry(l.name().to_owned())
            .or_insert(entry)
            .clone())
    }

    /// The model's schedule (base or post-swap) and its register
    /// requirement, both cached. The requirement is budget-independent,
    /// so multi-budget sweeps allocate once per `(loop, model)`.
    fn cached_requirement(
        &self,
        l: &Loop,
        model: ModelId,
    ) -> Result<(Arc<BaseSchedule>, u32), PipelineError> {
        let spec = model.spec();
        let base = if spec.swaps() {
            self.swapped_base(l)?
        } else {
            self.base(l)?
        };
        if spec.is_ideal() {
            return Ok((base, 0));
        }
        if let Some(&regs) = self.reqs.lock().get(&(l.name().to_owned(), model)) {
            return Ok((base, regs));
        }
        let (sched, lts) = (&base.sched, &base.lifetimes);
        let raw = if spec.is_dual() {
            let classes = classify(l, &self.machine, sched, lts);
            allocate_dual(lts, &classes, sched.ii()).regs
        } else {
            allocate_unified(lts, sched.ii()).regs
        };
        // Same transform, same inputs as `pipeline::requirement` — the
        // cached and uncached paths must stay bit-identical.
        let ctx = RequirementCtx {
            l,
            ii: sched.ii(),
            lifetimes: lts,
        };
        let regs = spec.effective_requirement(raw, &ctx);
        self.reqs.lock().insert((l.name().to_owned(), model), regs);
        Ok((base, regs))
    }

    /// Analyses `l` under `model` with unlimited registers, reusing the
    /// cached base (or post-swap) schedule.
    ///
    /// # Errors
    ///
    /// Propagates scheduling and machine failures, naming the loop.
    pub fn analyze(
        &self,
        l: &Loop,
        model: impl Into<ModelId>,
    ) -> Result<LoopAnalysis, PipelineError> {
        let model = model.into();
        let spec = model.spec();
        let base = if spec.swaps() {
            self.swapped_base(l)?
        } else {
            self.base(l)?
        };
        let (sched, lts) = (&base.sched, &base.lifetimes);
        let (raw, pressure) = if spec.is_ideal() {
            (0, None)
        } else if spec.is_dual() {
            let classes = classify(l, &self.machine, sched, lts);
            let alloc = allocate_dual(lts, &classes, sched.ii());
            (alloc.regs, Some(alloc.pressure))
        } else {
            (allocate_unified(lts, sched.ii()).regs, None)
        };
        let regs = if spec.is_ideal() {
            0
        } else {
            let ctx = RequirementCtx {
                l,
                ii: sched.ii(),
                lifetimes: lts,
            };
            let regs = spec.effective_requirement(raw, &ctx);
            self.reqs.lock().insert((l.name().to_owned(), model), regs);
            regs
        };
        let analysis = LoopAnalysis {
            name: l.name().to_owned(),
            model,
            ii: sched.ii(),
            regs,
            max_live: max_live(lts, sched.ii()),
            pressure,
            iterations: l.weight().iterations(),
        };
        if let Some(c) = &self.certifier {
            c.certify_analysis(l, &self.machine, sched, &analysis)
                .map_err(|v| {
                    Self::fail(l, PipelineStage::Certify(format!("model `{model}`: {v}")))
                })?;
        }
        Ok(analysis)
    }

    /// Runs the attached certifier (if any) over a finished evaluation,
    /// passing through the evaluation on success.
    #[allow(clippy::too_many_arguments)]
    fn certified(
        &self,
        original: &Loop,
        final_l: &Loop,
        sched: &Schedule,
        spilled: &[String],
        spill_stores: usize,
        spill_loads: usize,
        eval: LoopEval,
    ) -> Result<LoopEval, PipelineError> {
        if let Some(c) = &self.certifier {
            c.certify_eval(
                original,
                &self.machine,
                final_l,
                sched,
                spilled,
                spill_stores,
                spill_loads,
                &eval,
            )
            .map_err(|v| {
                Self::fail(
                    original,
                    PipelineStage::Certify(format!(
                        "model `{}` @ budget {}: {v}",
                        eval.model, eval.budget
                    )),
                )
            })?;
        }
        Ok(eval)
    }

    /// The cached spill trajectory of `(l, model)`, creating (and
    /// caching) it on first use. Creation seeds checkpoint 0 from the
    /// cached base schedule — the same seeding the old per-budget
    /// `spill_until_fits_seeded` call used — and the returned flag says
    /// whether this call created the entry (for hit/resume accounting).
    ///
    /// # Errors
    ///
    /// Propagates scheduling and requirement failures, naming the loop.
    /// A failed creation caches nothing.
    fn trajectory(
        &self,
        l: &Loop,
        model: ModelId,
    ) -> Result<(Arc<Mutex<SpillTrajectory>>, bool), PipelineError> {
        let key = (l.name().to_owned(), model);
        if let Some(hit) = self.trajectories.lock().get(&key) {
            return Ok((hit.clone(), false));
        }
        // Construct outside the map lock so distinct loops build
        // concurrently; a racing duplicate is bit-identical (the whole
        // pipeline is deterministic), so first-insert-wins is sound.
        let seed = self.base(l)?;
        let opts = self.opts;
        let mut req = move |l: &Loop, m: &Machine, s: &mut Schedule| -> Result<u32, MachineError> {
            requirement(l, m, s, model, &opts)
        };
        let traj = SpillTrajectory::from_base(
            l,
            &self.machine,
            seed.sched.clone(),
            &mut req,
            self.opts.spill,
        )
        .map_err(|e| Self::fail(l, e))?;
        let entry = Arc::new(Mutex::new(traj));
        let mut map = self.trajectories.lock();
        let created = !map.contains_key(&key);
        Ok((map.entry(key).or_insert(entry).clone(), created))
    }

    /// Materialises an imported snapshot into a live trajectory: a
    /// verified replay of the recorded descent (see
    /// [`SpillTrajectory::replay`]), committed to the live cache and
    /// removed from the import map. Two racing materialisations replay
    /// identically; first insert wins.
    ///
    /// # Errors
    ///
    /// Propagates replay failures — including snapshot-mismatch errors
    /// for stale or foreign records — naming the loop.
    fn materialize(
        &self,
        l: &Loop,
        model: ModelId,
        snap: &TrajectorySnapshot,
    ) -> Result<Arc<Mutex<SpillTrajectory>>, PipelineError> {
        let key = (l.name().to_owned(), model);
        let seed = self.base(l)?;
        let opts = self.opts;
        let mut req = move |l: &Loop, m: &Machine, s: &mut Schedule| -> Result<u32, MachineError> {
            requirement(l, m, s, model, &opts)
        };
        // With a certifier attached, every restored checkpoint is
        // re-validated during the replay; a violation aborts the
        // materialisation like any snapshot mismatch, naming the
        // checkpoint and the violated rule.
        let traj = match &self.certifier {
            None => SpillTrajectory::replay(
                l,
                &self.machine,
                seed.sched.clone(),
                snap,
                &mut req,
                self.opts.spill,
            ),
            Some(certifier) => {
                let machine = &self.machine;
                let mut checker =
                    |step: usize, cl: &Loop, sched: &Schedule, regs: u32| -> Result<(), String> {
                        certifier
                            .certify_checkpoint(step, cl, machine, sched, model, regs)
                            .map_err(|v| v.to_string())
                    };
                SpillTrajectory::replay_with_checker(
                    l,
                    &self.machine,
                    seed.sched.clone(),
                    snap,
                    &mut req,
                    self.opts.spill,
                    Some(&mut checker),
                )
            }
        }
        .map_err(|e| Self::fail(l, e))?;
        let entry = Arc::new(Mutex::new(traj));
        let entry = self
            .trajectories
            .lock()
            .entry(key.clone())
            .or_insert(entry)
            .clone();
        self.imported.lock().remove(&key);
        Ok(entry)
    }

    /// The evaluation a recorded snapshot checkpoint reproduces:
    /// checkpoint `k` (0 = base) carries exactly the scalars
    /// [`crate::pipeline::eval_from_spill`] reads off a real
    /// [`ncdrf_spill::SpillResult`], so the result is bit-identical to
    /// evaluating the materialised trajectory — without rebuilding it.
    fn eval_from_snapshot(
        &self,
        l: &Loop,
        model: ModelId,
        budget: u32,
        snap: &TrajectorySnapshot,
        k: usize,
    ) -> LoopEval {
        let (regs, ii, mem_ops) = if k == 0 {
            (snap.base_regs, snap.base_ii, snap.base_mem_ops)
        } else {
            let s = &snap.steps[k - 1];
            (s.regs, s.ii, s.mem_ops)
        };
        LoopEval {
            name: l.name().to_owned(),
            model,
            budget,
            ii,
            regs,
            fits: regs <= budget,
            spilled: k,
            mem_ops,
            ports: self.machine.memory_ports() as u32,
            iterations: l.weight().iterations(),
        }
    }

    /// Evaluates `l` under `model` with a `budget`-register file.
    ///
    /// Loops whose cached-schedule requirement already fits the budget —
    /// the common case — return directly without touching the spiller.
    /// The rest are served from the session's cached
    /// [`SpillTrajectory`] for `(l, model)`: a budget that an earlier
    /// (larger-budget) evaluation already spilled past is answered from
    /// the checkpoints, and a deeper budget **resumes** the descent from
    /// the deepest checkpoint instead of respilling from zero — the
    /// trajectory hit/resume counters in [`CacheStats`] make the reuse
    /// visible. Results are bit-identical to the uncached
    /// [`crate::evaluate`] either way (pinned by the
    /// `trajectory_identity` differential suite).
    ///
    /// # Errors
    ///
    /// Propagates scheduling and spilling failures, naming the loop. A
    /// failure while extending the trajectory for this budget does not
    /// poison the cached prefix: budgets it already serves (and other
    /// models' trajectories) keep working.
    pub fn evaluate(
        &self,
        l: &Loop,
        model: impl Into<ModelId>,
        budget: u32,
    ) -> Result<LoopEval, PipelineError> {
        let model = model.into();
        let no_spill_eval = |sched: &Schedule, regs: u32| LoopEval {
            name: l.name().to_owned(),
            model,
            budget,
            ii: sched.ii(),
            regs,
            fits: true,
            spilled: 0,
            mem_ops: l.memory_ops(),
            ports: self.machine.memory_ports() as u32,
            iterations: l.weight().iterations(),
        };
        // Fast path: the requirement of the cached schedule, computed
        // without cloning the loop or entering the spiller. This equals
        // the spiller's round-1 requirement (the swap pass is
        // deterministic), so `regs <= budget` short-circuits exactly the
        // evaluations the spiller would have returned unchanged.
        if model.spec().is_ideal() {
            let base = self.base(l)?;
            let eval = no_spill_eval(&base.sched, 0);
            return self.certified(l, l, &base.sched, &[], 0, 0, eval);
        }
        let (req_base, regs) = self.cached_requirement(l, model)?;
        if regs <= budget {
            let eval = no_spill_eval(&req_base.sched, regs);
            return self.certified(l, l, &req_base.sched, &[], 0, 0, eval);
        }
        // Slow path: real spilling, via the cached trajectory (seeded
        // from the cached base schedule; the swapped model re-derives
        // its swap from the base, exactly as the uncached pipeline
        // does). The entry lock serialises same-pair evaluations; the
        // grid executor never co-schedules those, so sweeps don't
        // contend here. An *imported* snapshot (persisted by a prior
        // run's shard artifact) serves budgets its recorded checkpoints
        // fit without recomputing anything, and is replayed into a live
        // trajectory the first time a budget needs the descent resumed.
        let key = (l.name().to_owned(), model);
        let live = self.trajectories.lock().get(&key).cloned();
        // Bound lookups (guards dropped immediately): `materialize`
        // re-locks the import map to retire the snapshot it consumed.
        let snap = match &live {
            Some(_) => None,
            None => self.imported.lock().get(&key).cloned(),
        };
        let (traj, created) = match live {
            Some(t) => (t, false),
            None => match snap {
                Some(snap) => {
                    // Integrity anchor before trusting any recorded
                    // scalar: the snapshot's base checkpoint must
                    // reproduce this session's own (just-computed) base
                    // requirement, II and memory-op count. This rejects
                    // foreign snapshots — wrong machine, options or
                    // spill heuristic — loudly and for free; tampering
                    // *within* a matching base is only caught when the
                    // record is replayed (or by the merge-level
                    // `--verify-against-sequential` gate).
                    if snap.base_regs != regs
                        || snap.base_ii != req_base.sched.ii()
                        || snap.base_mem_ops != l.memory_ops()
                    {
                        return Err(Self::fail(
                            l,
                            ncdrf_spill::SpillError::Snapshot(format!(
                                "imported base checkpoint records regs {} / II {} / {} mem \
                                 ops, this session computes {} / {} / {}",
                                snap.base_regs,
                                snap.base_ii,
                                snap.base_mem_ops,
                                regs,
                                req_base.sched.ii(),
                                l.memory_ops()
                            )),
                        ));
                    }
                    // In certify mode recorded scalars are never served
                    // directly: the shortcut below is skipped, so the
                    // snapshot is replayed (certifying every restored
                    // checkpoint) and the budget is answered from the
                    // live trajectory. The result and the cache counters
                    // are identical either way — a replayed-checkpoint
                    // serve recomputes no spill step and counts as the
                    // same trajectory hit.
                    if self.certifier.is_none() {
                        if let Some(k) = snap.first_fit(budget) {
                            self.traj_hits.fetch_add(1, Ordering::Relaxed);
                            return Ok(self.eval_from_snapshot(l, model, budget, &snap, k));
                        }
                        if snap.exhausted && !self.opts.spill.escalate_ii {
                            // The recorded descent ended without fitting
                            // and there is no fallback: the terminal
                            // checkpoint is the honest (unfit) answer,
                            // exactly as the live path serves it.
                            self.traj_hits.fetch_add(1, Ordering::Relaxed);
                            return Ok(self.eval_from_snapshot(
                                l,
                                model,
                                budget,
                                &snap,
                                snap.steps_recorded(),
                            ));
                        }
                    }
                    // This budget needs the descent extended (or the
                    // per-budget escalation fallback): replay the record
                    // into a live trajectory and resume below.
                    (self.materialize(l, model, &snap)?, false)
                }
                None => self.trajectory(l, model)?,
            },
        };
        let opts = self.opts;
        let mut req = move |l: &Loop, m: &Machine, s: &mut Schedule| -> Result<u32, MachineError> {
            requirement(l, m, s, model, &opts)
        };
        let (r, resume) = traj
            .lock()
            .evaluate(&self.machine, budget, &mut req)
            .map_err(|e| Self::fail(l, e))?;
        self.spill_steps
            .fetch_add(resume.steps_computed as u64, Ordering::Relaxed);
        if !created {
            if resume.steps_computed > 0 {
                self.traj_resumes.fetch_add(1, Ordering::Relaxed);
            } else if !resume.escalated {
                // An escalated call recomputes the (uncached, budget-
                // dependent) II-escalation scan even when it added no
                // checkpoints; counting it as a hit would misreport
                // repeated below-floor budgets as free.
                self.traj_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut eval = eval_from_spill(l, model, budget, &r);
        eval.ports = self.machine.memory_ports() as u32;
        self.certified(
            l,
            &r.l,
            &r.sched,
            &r.spilled,
            r.spill_stores,
            r.spill_loads,
            eval,
        )
    }

    /// [`Session::analyze`] over every loop of `corpus`, in parallel,
    /// preserving corpus order.
    ///
    /// # Errors
    ///
    /// Returns the first per-loop failure in corpus order.
    pub fn analyze_corpus(
        &self,
        corpus: &Corpus,
        model: impl Into<ModelId>,
    ) -> Result<Vec<LoopAnalysis>, PipelineError> {
        let model = model.into();
        crate::experiment::try_map_loops(corpus, |l| self.analyze(l, model))
    }

    /// [`Session::evaluate`] over every loop of `corpus`, in parallel,
    /// preserving corpus order.
    ///
    /// # Errors
    ///
    /// Returns the first per-loop failure in corpus order.
    pub fn evaluate_corpus(
        &self,
        corpus: &Corpus,
        model: impl Into<ModelId>,
        budget: u32,
    ) -> Result<Vec<LoopEval>, PipelineError> {
        let model = model.into();
        crate::experiment::try_map_loops(corpus, |l| self.evaluate(l, model, budget))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use ncdrf_corpus::{kernels, Corpus};

    #[test]
    fn four_model_analysis_schedules_once() {
        let session = Session::new(Machine::clustered(3, 1));
        let l = kernels::livermore::hydro();
        for model in Model::all() {
            session.analyze(&l, model).unwrap();
        }
        let stats = session.cache_stats();
        assert_eq!(stats.misses, 1, "one scheduling run for four models");
        assert_eq!(stats.hits, 3);
    }

    #[test]
    fn evaluate_reuses_the_analysis_schedule() {
        let session = Session::new(Machine::clustered(6, 1));
        let l = kernels::blas::daxpy();
        session.analyze(&l, Model::Unified).unwrap();
        for model in Model::all() {
            session.evaluate(&l, model, 32).unwrap();
        }
        assert_eq!(session.cache_stats().misses, 1);
    }

    #[test]
    fn parallel_corpus_sweep_schedules_each_loop_once() {
        let corpus = Corpus::small().take(12);
        let session = Session::new(Machine::clustered(3, 1));
        for model in Model::finite() {
            session.analyze_corpus(&corpus, model).unwrap();
        }
        let stats = session.cache_stats();
        assert_eq!(stats.misses, corpus.len() as u64);
        assert_eq!(stats.hits, 2 * corpus.len() as u64);
    }

    #[test]
    fn session_evaluate_matches_uncached_evaluate() {
        let machine = Machine::clustered(6, 1);
        let session = Session::new(machine.clone());
        let opts = PipelineOptions::default();
        for l in Corpus::small().take(10).iter() {
            for model in Model::all() {
                for budget in [12, 64] {
                    let cached = session.evaluate(l, model, budget).unwrap();
                    let fresh =
                        crate::pipeline::evaluate(l, &machine, model, budget, &opts).unwrap();
                    assert_eq!(cached, fresh, "{} {model:?} @{budget}", l.name());
                }
            }
        }
    }

    #[test]
    fn repeated_swapped_analyses_count_as_hits() {
        let session = Session::new(Machine::clustered(6, 1));
        let l = kernels::livermore::hydro();
        session.analyze(&l, Model::Swapped).unwrap();
        // First request: one scheduling run, swap pass filled lazily.
        assert_eq!(
            session.cache_stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                ..CacheStats::default()
            }
        );
        session.analyze(&l, Model::Swapped).unwrap();
        session.analyze(&l, Model::Swapped).unwrap();
        // Each repeat is served entirely from the swapped cache and must
        // be visible as reuse, not invisible work.
        assert_eq!(
            session.cache_stats(),
            CacheStats {
                hits: 2,
                misses: 1,
                ..CacheStats::default()
            }
        );
    }

    #[test]
    fn budget_ladder_resumes_the_spill_trajectory() {
        let machine = Machine::clustered(6, 1);
        let session = Session::new(machine);
        let l = kernels::recurrences::chain8();
        let free = session.analyze(&l, Model::Unified).unwrap().regs;
        assert!(free > 4, "chain8 should be pressured");

        // A descending budget ladder: the first rung creates and extends
        // the trajectory, every later rung hits or resumes it.
        let top = session.evaluate(&l, Model::Unified, free - 1).unwrap();
        assert!(top.spilled > 0);
        let deepest = session.evaluate(&l, Model::Unified, 4).unwrap();
        let between = session.evaluate(&l, Model::Unified, free - 1).unwrap();
        assert_eq!(between, top, "checkpoint-served repeat is identical");
        let stats = session.cache_stats();
        assert_eq!(
            stats.traj_hits + stats.traj_resumes,
            2,
            "both follow-up rungs reused the trajectory"
        );
        assert!(stats.traj_hits >= 1, "the repeat rung was a pure hit");
        // The whole ladder computed exactly the deepest rung's steps.
        assert_eq!(stats.spill_steps, deepest.spilled as u64);

        // clear_cache drops the trajectory too: the same evaluation
        // recomputes its steps from zero.
        session.clear_cache();
        let again = session.evaluate(&l, Model::Unified, 4).unwrap();
        assert_eq!(again, deepest);
        assert_eq!(
            session.cache_stats().spill_steps,
            2 * deepest.spilled as u64,
            "a cleared trajectory cache recomputes the descent"
        );
    }

    #[test]
    fn escalated_evaluations_are_not_counted_as_hits() {
        let session = Session::new(Machine::clustered(6, 1));
        let l = kernels::recurrences::chain8();
        // Budget 1 sits below the descent's floor: the trajectory
        // exhausts and every evaluation re-runs the per-budget
        // escalation scan.
        let first = session.evaluate(&l, Model::Unified, 1).unwrap();
        let after_first = session.cache_stats();
        let second = session.evaluate(&l, Model::Unified, 1).unwrap();
        assert_eq!(second, first);
        let after_second = session.cache_stats();
        // The repeat recomputed escalation work — neither a hit nor a
        // resume, and no new spill steps.
        assert_eq!(after_second.traj_hits, after_first.traj_hits);
        assert_eq!(after_second.traj_resumes, after_first.traj_resumes);
        assert_eq!(after_second.spill_steps, after_first.spill_steps);
        // A checkpoint-served budget still counts as a real hit.
        let free = session.analyze(&l, Model::Unified).unwrap().regs;
        session.evaluate(&l, Model::Unified, free - 1).unwrap();
        assert_eq!(session.cache_stats().traj_hits, after_second.traj_hits + 1);
    }

    #[test]
    fn trajectories_are_isolated_per_model() {
        let session = Session::new(Machine::clustered(6, 1));
        let l = kernels::recurrences::chain8();
        let e_uni = session.evaluate(&l, Model::Unified, 4).unwrap();
        let before = session.cache_stats();
        // A different model neither hits nor resumes the unified
        // trajectory: it builds its own.
        session.evaluate(&l, Model::Partitioned, 4).unwrap();
        let after = session.cache_stats();
        assert_eq!(after.traj_hits, before.traj_hits);
        assert_eq!(after.traj_resumes, before.traj_resumes);
        // And the unified one is still intact: the deep budget repeats
        // identically, and a checkpoint-served budget is a pure hit.
        let repeat = session.evaluate(&l, Model::Unified, 4).unwrap();
        assert_eq!(repeat, e_uni);
        let free = session.analyze(&l, Model::Unified).unwrap().regs;
        let hits = session.cache_stats().traj_hits;
        session.evaluate(&l, Model::Unified, free - 1).unwrap();
        assert_eq!(session.cache_stats().traj_hits, hits + 1);
    }

    #[test]
    fn imported_snapshots_serve_and_resume_across_sessions() {
        let machine = Machine::clustered(6, 1);
        let opts = PipelineOptions::default();
        let first = Session::new(machine.clone());
        let l = kernels::recurrences::chain8();
        let free = first.analyze(&l, Model::Unified).unwrap().regs;
        assert!(free > 5, "chain8 should be pressured");
        let top = first.evaluate(&l, Model::Unified, free - 1).unwrap();
        assert!(top.spilled > 0);
        let exported = first.export_trajectories();
        assert_eq!(exported.len(), 1);
        assert_eq!(exported[0].loop_name, "chain8");
        assert_eq!(exported[0].model, Model::Unified);

        // A fresh session importing the record serves the recorded
        // budget from the checkpoint scalars alone: bit-identical, no
        // spill step recomputed, counted as a trajectory hit.
        let second = Session::new(machine.clone());
        second.import_trajectories(exported.clone());
        let served = second.evaluate(&l, Model::Unified, free - 1).unwrap();
        assert_eq!(served, top);
        let stats = second.cache_stats();
        assert_eq!(stats.spill_steps, 0);
        assert_eq!(stats.traj_hits, 1);
        assert_eq!(stats.traj_resumes, 0);

        // A deeper budget resumes the persisted descent: the replayed
        // prefix is not recounted, so the whole ladder costs fewer
        // steps than a from-scratch evaluation.
        let deep = second.evaluate(&l, Model::Unified, 4).unwrap();
        let fresh = crate::pipeline::evaluate(&l, &machine, Model::Unified, 4, &opts).unwrap();
        assert_eq!(deep, fresh);
        let stats = second.cache_stats();
        assert_eq!(stats.traj_resumes, 1);
        assert!(stats.spill_steps > 0);
        assert!(
            (stats.spill_steps as usize) < fresh.spilled,
            "resume must cost only the extension ({} vs {} from scratch)",
            stats.spill_steps,
            fresh.spilled
        );

        // The extended descent exports again; a third session serves
        // any budget the record reaches as a pure hit (zero recomputed
        // steps)...
        let third = Session::new(machine.clone());
        let exported = second.export_trajectories();
        let floor = exported[0].snapshot.min_regs();
        third.import_trajectories(exported);
        let at_floor = third.evaluate(&l, Model::Unified, floor).unwrap();
        assert_eq!(
            at_floor,
            crate::pipeline::evaluate(&l, &machine, Model::Unified, floor, &opts).unwrap()
        );
        assert_eq!(third.cache_stats().spill_steps, 0);
        assert_eq!(third.cache_stats().traj_hits, 1);
        // ...and a below-floor budget still answers bit-identically:
        // the imported record is materialised and the per-budget
        // escalation fallback recomputes, which — exactly like the live
        // path — is neither a hit nor a resume.
        assert_eq!(third.evaluate(&l, Model::Unified, 4).unwrap(), fresh);
        assert_eq!(third.cache_stats().spill_steps, 0);
        assert_eq!(third.cache_stats().traj_hits, 1);
        assert_eq!(third.cache_stats().traj_resumes, 0);
    }

    #[test]
    fn corrupt_imported_snapshots_fail_loudly_on_materialisation() {
        let machine = Machine::clustered(6, 1);
        let first = Session::new(machine.clone());
        let l = kernels::recurrences::chain8();
        let free = first.analyze(&l, Model::Unified).unwrap().regs;
        first.evaluate(&l, Model::Unified, free - 1).unwrap();
        let mut exported = first.export_trajectories();
        for step in &mut exported[0].snapshot.steps {
            step.regs = step.regs.saturating_add(13);
        }

        let second = Session::new(machine.clone());
        second.import_trajectories(exported.clone());
        // Budget 4 fits no (doctored) checkpoint, so the session must
        // replay — and the replay must catch the corruption.
        let err = second.evaluate(&l, Model::Unified, 4).unwrap_err();
        assert_eq!(err.loop_name, "chain8");
        assert!(
            err.to_string().contains("does not replay"),
            "snapshot corruption must be named: {err}"
        );

        // A foreign *base* checkpoint is rejected before any recorded
        // scalar is served, even for budgets a (doctored) step would
        // have answered without a replay.
        let mut foreign = exported;
        for t in &mut foreign {
            t.snapshot.base_regs += 1;
        }
        let third = Session::new(machine);
        third.import_trajectories(foreign);
        let err = third.evaluate(&l, Model::Unified, free - 1).unwrap_err();
        assert_eq!(err.loop_name, "chain8");
        assert!(
            err.to_string().contains("base checkpoint"),
            "foreign base must be rejected at serve time: {err}"
        );
    }

    #[test]
    fn clear_cache_forces_rescheduling() {
        let session = Session::new(Machine::clustered(3, 1));
        let l = kernels::blas::dot();
        session.analyze(&l, Model::Unified).unwrap();
        session.clear_cache();
        session.analyze(&l, Model::Unified).unwrap();
        assert_eq!(session.cache_stats().misses, 2);
    }

    #[test]
    fn base_failure_names_the_loop() {
        use ncdrf_machine::{FuClass, FuGroup};
        let no_adder = Machine::new(
            "NOADD",
            vec![
                FuGroup::unified(FuClass::Multiplier, 3, 2),
                FuGroup::unified(FuClass::MemPort, 1, 2),
            ],
            1,
        )
        .unwrap();
        let session = Session::new(no_adder);
        let l = kernels::blas::daxpy();
        let err = session.analyze(&l, Model::Unified).unwrap_err();
        assert_eq!(err.loop_name, "daxpy");
        assert!(matches!(err.stage, PipelineStage::Schedule(_)));
    }
}
