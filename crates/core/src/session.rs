//! The [`Session`] experiment driver: schedule each loop **once**, derive
//! every model's result from the cached base schedule.
//!
//! The paper's experiments compare the same scheduled loop under four
//! register-file models (Ideal / Unified / Partitioned / Swapped), across
//! several register budgets. Modulo scheduling dominates the pipeline
//! cost, yet it depends only on `(loop, machine)` — not on the model or
//! the budget. A `Session` owns one machine and a per-loop cache of base
//! schedules (plus their lifetimes), so a four-model comparison schedules
//! once instead of four times:
//!
//! ```
//! use ncdrf::{Model, Session};
//! use ncdrf::corpus::kernels;
//! use ncdrf::machine::Machine;
//!
//! # fn main() -> Result<(), ncdrf::PipelineError> {
//! let session = Session::new(Machine::clustered(3, 1));
//! let l = kernels::livermore::hydro();
//! let unified = session.analyze(&l, Model::Unified)?;
//! let swapped = session.analyze(&l, Model::Swapped)?; // cache hit: no rescheduling
//! assert!(swapped.regs <= unified.regs);
//! assert_eq!(session.cache_stats().hits, 1);
//! # Ok(())
//! # }
//! ```
//!
//! Sessions are `Sync`: corpus-level sweeps run loops in parallel against
//! one shared cache (see [`Session::analyze_corpus`]).

use crate::model::Model;
use crate::pipeline::{
    eval_from_spill, requirement, LoopAnalysis, LoopEval, PipelineError, PipelineOptions,
    PipelineStage,
};
use ncdrf_corpus::Corpus;
use ncdrf_ddg::Loop;
use ncdrf_machine::{Machine, MachineError};
use ncdrf_regalloc::{allocate_dual, allocate_unified, classify, lifetimes, max_live, Lifetime};
use ncdrf_sched::{modulo_schedule_with, Schedule};
use ncdrf_spill::SpillTrajectory;
use ncdrf_swap::swap_pass_with;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-(loop, model) spill trajectories, individually locked so distinct
/// pairs extend concurrently while same-pair evaluations serialise.
type TrajectoryCache = Mutex<HashMap<(String, Model), Arc<Mutex<SpillTrajectory>>>>;

/// A loop's cached model-independent artifacts: the base modulo schedule
/// and its lifetimes.
#[derive(Debug, Clone)]
pub struct BaseSchedule {
    /// The base (pre-swap, pre-spill) modulo schedule.
    pub sched: Schedule,
    /// Value lifetimes of the base schedule.
    pub lifetimes: Vec<Lifetime>,
}

/// Hit/miss counters of a session's schedule and spill-trajectory
/// caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Schedule requests served from the cache — base-schedule lookups
    /// plus post-swap lookups that skipped a rerun of the swap pass.
    pub hits: u64,
    /// Base requests that ran the scheduler.
    pub misses: u64,
    /// Budgeted evaluations served **entirely** from an existing spill
    /// trajectory's checkpoints — no spill step was recomputed and no
    /// per-budget escalation fallback ran.
    pub traj_hits: u64,
    /// Budgeted evaluations that *resumed* an existing trajectory:
    /// extension started from the deepest prior checkpoint instead of
    /// respilling from zero.
    pub traj_resumes: u64,
    /// Spill steps (victim selection + rewrite + reschedule +
    /// allocation) actually computed. Without trajectory reuse a
    /// multi-budget sweep pays this once **per budget**; with it, once
    /// per `(loop, model)` — the `sweep_parallel` bench counter-asserts
    /// the saving.
    pub spill_steps: u64,
}

impl CacheStats {
    /// Accumulates another counter set (used when summing sessions,
    /// shards and merged reports — all five counters are per-cell and
    /// therefore sum exactly across any partition of the grid).
    pub fn absorb(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.traj_hits += other.traj_hits;
        self.traj_resumes += other.traj_resumes;
        self.spill_steps += other.spill_steps;
    }
}

/// The one-line summary every report and figure binary prints (pinned
/// by the golden text fixtures) — one source of truth for the five
/// counters.
impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} runs, {} hits | spill trajectories: {} steps, {} hits, {} resumes",
            self.misses, self.hits, self.spill_steps, self.traj_hits, self.traj_resumes
        )
    }
}

/// An experiment session over one machine: a schedule cache plus the
/// pipeline options shared by every analysis/evaluation it runs.
///
/// Loops are keyed by name; corpora keep names unique. Results are
/// bit-identical to the uncached per-call pipeline ([`crate::analyze`] /
/// [`crate::evaluate`]) because base scheduling is deterministic for a
/// given `(loop, machine, options)`.
#[derive(Debug)]
pub struct Session {
    machine: Machine,
    opts: PipelineOptions,
    cache: Mutex<HashMap<String, Arc<BaseSchedule>>>,
    /// Post-swap variants of cached base schedules, filled lazily the
    /// first time a loop is examined under [`Model::Swapped`].
    swapped: Mutex<HashMap<String, Arc<BaseSchedule>>>,
    /// Per-(loop, model) register requirements of the cached schedules.
    /// Budget-independent, so a multi-budget sweep allocates once.
    reqs: Mutex<HashMap<(String, Model), u32>>,
    /// Per-(loop, model) spill trajectories: the §5.4 descent computed
    /// once, checkpointed, and resumed by every budget that needs it
    /// (see [`Session::evaluate`]). The two-level locking lets distinct
    /// `(loop, model)` pairs extend their trajectories concurrently.
    trajectories: TrajectoryCache,
    hits: AtomicU64,
    misses: AtomicU64,
    traj_hits: AtomicU64,
    traj_resumes: AtomicU64,
    spill_steps: AtomicU64,
}

impl Session {
    /// Creates a session for `machine` with default [`PipelineOptions`].
    pub fn new(machine: Machine) -> Self {
        Session {
            machine,
            opts: PipelineOptions::default(),
            cache: Mutex::new(HashMap::new()),
            swapped: Mutex::new(HashMap::new()),
            reqs: Mutex::new(HashMap::new()),
            trajectories: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            traj_hits: AtomicU64::new(0),
            traj_resumes: AtomicU64::new(0),
            spill_steps: AtomicU64::new(0),
        }
    }

    /// Replaces the session's pipeline options (builder style).
    pub fn options(mut self, opts: PipelineOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The session's machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The session's pipeline options.
    pub fn pipeline_options(&self) -> &PipelineOptions {
        &self.opts
    }

    /// Cache hit/miss counters so far — schedule caches *and* the spill
    /// trajectory cache.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            traj_hits: self.traj_hits.load(Ordering::Relaxed),
            traj_resumes: self.traj_resumes.load(Ordering::Relaxed),
            spill_steps: self.spill_steps.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached schedule **and** every cached spill trajectory
    /// (counters are kept).
    pub fn clear_cache(&self) {
        self.cache.lock().clear();
        self.swapped.lock().clear();
        self.reqs.lock().clear();
        self.trajectories.lock().clear();
    }

    fn fail(l: &Loop, stage: impl Into<PipelineStage>) -> PipelineError {
        PipelineError::new(l.name(), stage)
    }

    /// The cached base schedule of `l`, scheduling it on a miss.
    ///
    /// Scheduling runs outside the cache lock, so parallel corpus sweeps
    /// schedule distinct loops concurrently. If two threads race on the
    /// same loop the first insert wins (both results are identical —
    /// scheduling is deterministic).
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures, naming the loop.
    pub fn base(&self, l: &Loop) -> Result<Arc<BaseSchedule>, PipelineError> {
        if let Some(hit) = self.cache.lock().get(l.name()) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let sched = modulo_schedule_with(l, &self.machine, self.opts.spill.scheduler)
            .map_err(|e| Self::fail(l, e))?;
        let lts = lifetimes(l, &self.machine, &sched).map_err(|e| Self::fail(l, e))?;
        let base = Arc::new(BaseSchedule {
            sched,
            lifetimes: lts,
        });
        Ok(self
            .cache
            .lock()
            .entry(l.name().to_owned())
            .or_insert(base)
            .clone())
    }

    /// The cached post-swap schedule of `l`: the base schedule cloned and
    /// run through the greedy swap pass once, with its lifetimes. Every
    /// [`Model::Swapped`] analysis/evaluation shares this single run (the
    /// pass is deterministic and idempotent).
    ///
    /// # Errors
    ///
    /// Propagates scheduling and machine failures, naming the loop.
    pub fn swapped_base(&self, l: &Loop) -> Result<Arc<BaseSchedule>, PipelineError> {
        if let Some(hit) = self.swapped.lock().get(l.name()) {
            // A swapped-cache hit is saved work (scheduling *and* the swap
            // pass), so it counts toward `CacheStats::hits` like a base
            // hit; omitting it under-reported reuse for `Model::Swapped`.
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        let base = self.base(l)?;
        let mut sched = base.sched.clone();
        swap_pass_with(l, &self.machine, &mut sched, self.opts.swap)
            .map_err(|e| Self::fail(l, e))?;
        let lts = lifetimes(l, &self.machine, &sched).map_err(|e| Self::fail(l, e))?;
        let entry = Arc::new(BaseSchedule {
            sched,
            lifetimes: lts,
        });
        Ok(self
            .swapped
            .lock()
            .entry(l.name().to_owned())
            .or_insert(entry)
            .clone())
    }

    /// The model's schedule (base or post-swap) and its register
    /// requirement, both cached. The requirement is budget-independent,
    /// so multi-budget sweeps allocate once per `(loop, model)`.
    fn cached_requirement(
        &self,
        l: &Loop,
        model: Model,
    ) -> Result<(Arc<BaseSchedule>, u32), PipelineError> {
        let base = if model.swaps() {
            self.swapped_base(l)?
        } else {
            self.base(l)?
        };
        if model == Model::Ideal {
            return Ok((base, 0));
        }
        if let Some(&regs) = self.reqs.lock().get(&(l.name().to_owned(), model)) {
            return Ok((base, regs));
        }
        let (sched, lts) = (&base.sched, &base.lifetimes);
        let regs = match model {
            Model::Ideal => unreachable!("handled above"),
            Model::Unified => allocate_unified(lts, sched.ii()).regs,
            Model::Partitioned | Model::Swapped => {
                let classes = classify(l, &self.machine, sched, lts);
                allocate_dual(lts, &classes, sched.ii()).regs
            }
        };
        self.reqs.lock().insert((l.name().to_owned(), model), regs);
        Ok((base, regs))
    }

    /// Analyses `l` under `model` with unlimited registers, reusing the
    /// cached base (or post-swap) schedule.
    ///
    /// # Errors
    ///
    /// Propagates scheduling and machine failures, naming the loop.
    pub fn analyze(&self, l: &Loop, model: Model) -> Result<LoopAnalysis, PipelineError> {
        let base = if model.swaps() {
            self.swapped_base(l)?
        } else {
            self.base(l)?
        };
        let (sched, lts) = (&base.sched, &base.lifetimes);
        let (regs, pressure) = match model {
            Model::Ideal => (0, None),
            Model::Unified => (allocate_unified(lts, sched.ii()).regs, None),
            Model::Partitioned | Model::Swapped => {
                let classes = classify(l, &self.machine, sched, lts);
                let alloc = allocate_dual(lts, &classes, sched.ii());
                (alloc.regs, Some(alloc.pressure))
            }
        };
        if model != Model::Ideal {
            self.reqs.lock().insert((l.name().to_owned(), model), regs);
        }
        Ok(LoopAnalysis {
            name: l.name().to_owned(),
            model,
            ii: sched.ii(),
            regs,
            max_live: max_live(lts, sched.ii()),
            pressure,
            iterations: l.weight().iterations(),
        })
    }

    /// The cached spill trajectory of `(l, model)`, creating (and
    /// caching) it on first use. Creation seeds checkpoint 0 from the
    /// cached base schedule — the same seeding the old per-budget
    /// `spill_until_fits_seeded` call used — and the returned flag says
    /// whether this call created the entry (for hit/resume accounting).
    ///
    /// # Errors
    ///
    /// Propagates scheduling and requirement failures, naming the loop.
    /// A failed creation caches nothing.
    fn trajectory(
        &self,
        l: &Loop,
        model: Model,
    ) -> Result<(Arc<Mutex<SpillTrajectory>>, bool), PipelineError> {
        let key = (l.name().to_owned(), model);
        if let Some(hit) = self.trajectories.lock().get(&key) {
            return Ok((hit.clone(), false));
        }
        // Construct outside the map lock so distinct loops build
        // concurrently; a racing duplicate is bit-identical (the whole
        // pipeline is deterministic), so first-insert-wins is sound.
        let seed = self.base(l)?;
        let opts = self.opts;
        let mut req = move |l: &Loop, m: &Machine, s: &mut Schedule| -> Result<u32, MachineError> {
            requirement(l, m, s, model, &opts)
        };
        let traj = SpillTrajectory::from_base(
            l,
            &self.machine,
            seed.sched.clone(),
            &mut req,
            self.opts.spill,
        )
        .map_err(|e| Self::fail(l, e))?;
        let entry = Arc::new(Mutex::new(traj));
        let mut map = self.trajectories.lock();
        let created = !map.contains_key(&key);
        Ok((map.entry(key).or_insert(entry).clone(), created))
    }

    /// Evaluates `l` under `model` with a `budget`-register file.
    ///
    /// Loops whose cached-schedule requirement already fits the budget —
    /// the common case — return directly without touching the spiller.
    /// The rest are served from the session's cached
    /// [`SpillTrajectory`] for `(l, model)`: a budget that an earlier
    /// (larger-budget) evaluation already spilled past is answered from
    /// the checkpoints, and a deeper budget **resumes** the descent from
    /// the deepest checkpoint instead of respilling from zero — the
    /// trajectory hit/resume counters in [`CacheStats`] make the reuse
    /// visible. Results are bit-identical to the uncached
    /// [`crate::evaluate`] either way (pinned by the
    /// `trajectory_identity` differential suite).
    ///
    /// # Errors
    ///
    /// Propagates scheduling and spilling failures, naming the loop. A
    /// failure while extending the trajectory for this budget does not
    /// poison the cached prefix: budgets it already serves (and other
    /// models' trajectories) keep working.
    pub fn evaluate(&self, l: &Loop, model: Model, budget: u32) -> Result<LoopEval, PipelineError> {
        let no_spill_eval = |sched: &Schedule, regs: u32| LoopEval {
            name: l.name().to_owned(),
            model,
            budget,
            ii: sched.ii(),
            regs,
            fits: true,
            spilled: 0,
            mem_ops: l.memory_ops(),
            ports: self.machine.memory_ports() as u32,
            iterations: l.weight().iterations(),
        };
        // Fast path: the requirement of the cached schedule, computed
        // without cloning the loop or entering the spiller. This equals
        // the spiller's round-1 requirement (the swap pass is
        // deterministic), so `regs <= budget` short-circuits exactly the
        // evaluations the spiller would have returned unchanged.
        if model == Model::Ideal {
            let base = self.base(l)?;
            return Ok(no_spill_eval(&base.sched, 0));
        }
        let (req_base, regs) = self.cached_requirement(l, model)?;
        if regs <= budget {
            return Ok(no_spill_eval(&req_base.sched, regs));
        }
        // Slow path: real spilling, via the cached trajectory (seeded
        // from the cached base schedule; the swapped model re-derives
        // its swap from the base, exactly as the uncached pipeline
        // does). The entry lock serialises same-pair evaluations; the
        // grid executor never co-schedules those, so sweeps don't
        // contend here.
        let (traj, created) = self.trajectory(l, model)?;
        let opts = self.opts;
        let mut req = move |l: &Loop, m: &Machine, s: &mut Schedule| -> Result<u32, MachineError> {
            requirement(l, m, s, model, &opts)
        };
        let (r, resume) = traj
            .lock()
            .evaluate(&self.machine, budget, &mut req)
            .map_err(|e| Self::fail(l, e))?;
        self.spill_steps
            .fetch_add(resume.steps_computed as u64, Ordering::Relaxed);
        if !created {
            if resume.steps_computed > 0 {
                self.traj_resumes.fetch_add(1, Ordering::Relaxed);
            } else if !resume.escalated {
                // An escalated call recomputes the (uncached, budget-
                // dependent) II-escalation scan even when it added no
                // checkpoints; counting it as a hit would misreport
                // repeated below-floor budgets as free.
                self.traj_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut eval = eval_from_spill(l, model, budget, r);
        eval.ports = self.machine.memory_ports() as u32;
        Ok(eval)
    }

    /// [`Session::analyze`] over every loop of `corpus`, in parallel,
    /// preserving corpus order.
    ///
    /// # Errors
    ///
    /// Returns the first per-loop failure in corpus order.
    pub fn analyze_corpus(
        &self,
        corpus: &Corpus,
        model: Model,
    ) -> Result<Vec<LoopAnalysis>, PipelineError> {
        crate::experiment::try_map_loops(corpus, |l| self.analyze(l, model))
    }

    /// [`Session::evaluate`] over every loop of `corpus`, in parallel,
    /// preserving corpus order.
    ///
    /// # Errors
    ///
    /// Returns the first per-loop failure in corpus order.
    pub fn evaluate_corpus(
        &self,
        corpus: &Corpus,
        model: Model,
        budget: u32,
    ) -> Result<Vec<LoopEval>, PipelineError> {
        crate::experiment::try_map_loops(corpus, |l| self.evaluate(l, model, budget))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf_corpus::{kernels, Corpus};

    #[test]
    fn four_model_analysis_schedules_once() {
        let session = Session::new(Machine::clustered(3, 1));
        let l = kernels::livermore::hydro();
        for model in Model::all() {
            session.analyze(&l, model).unwrap();
        }
        let stats = session.cache_stats();
        assert_eq!(stats.misses, 1, "one scheduling run for four models");
        assert_eq!(stats.hits, 3);
    }

    #[test]
    fn evaluate_reuses_the_analysis_schedule() {
        let session = Session::new(Machine::clustered(6, 1));
        let l = kernels::blas::daxpy();
        session.analyze(&l, Model::Unified).unwrap();
        for model in Model::all() {
            session.evaluate(&l, model, 32).unwrap();
        }
        assert_eq!(session.cache_stats().misses, 1);
    }

    #[test]
    fn parallel_corpus_sweep_schedules_each_loop_once() {
        let corpus = Corpus::small().take(12);
        let session = Session::new(Machine::clustered(3, 1));
        for model in Model::finite() {
            session.analyze_corpus(&corpus, model).unwrap();
        }
        let stats = session.cache_stats();
        assert_eq!(stats.misses, corpus.len() as u64);
        assert_eq!(stats.hits, 2 * corpus.len() as u64);
    }

    #[test]
    fn session_evaluate_matches_uncached_evaluate() {
        let machine = Machine::clustered(6, 1);
        let session = Session::new(machine.clone());
        let opts = PipelineOptions::default();
        for l in Corpus::small().take(10).iter() {
            for model in Model::all() {
                for budget in [12, 64] {
                    let cached = session.evaluate(l, model, budget).unwrap();
                    let fresh =
                        crate::pipeline::evaluate(l, &machine, model, budget, &opts).unwrap();
                    assert_eq!(cached, fresh, "{} {model:?} @{budget}", l.name());
                }
            }
        }
    }

    #[test]
    fn repeated_swapped_analyses_count_as_hits() {
        let session = Session::new(Machine::clustered(6, 1));
        let l = kernels::livermore::hydro();
        session.analyze(&l, Model::Swapped).unwrap();
        // First request: one scheduling run, swap pass filled lazily.
        assert_eq!(
            session.cache_stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                ..CacheStats::default()
            }
        );
        session.analyze(&l, Model::Swapped).unwrap();
        session.analyze(&l, Model::Swapped).unwrap();
        // Each repeat is served entirely from the swapped cache and must
        // be visible as reuse, not invisible work.
        assert_eq!(
            session.cache_stats(),
            CacheStats {
                hits: 2,
                misses: 1,
                ..CacheStats::default()
            }
        );
    }

    #[test]
    fn budget_ladder_resumes_the_spill_trajectory() {
        let machine = Machine::clustered(6, 1);
        let session = Session::new(machine);
        let l = kernels::recurrences::chain8();
        let free = session.analyze(&l, Model::Unified).unwrap().regs;
        assert!(free > 4, "chain8 should be pressured");

        // A descending budget ladder: the first rung creates and extends
        // the trajectory, every later rung hits or resumes it.
        let top = session.evaluate(&l, Model::Unified, free - 1).unwrap();
        assert!(top.spilled > 0);
        let deepest = session.evaluate(&l, Model::Unified, 4).unwrap();
        let between = session.evaluate(&l, Model::Unified, free - 1).unwrap();
        assert_eq!(between, top, "checkpoint-served repeat is identical");
        let stats = session.cache_stats();
        assert_eq!(
            stats.traj_hits + stats.traj_resumes,
            2,
            "both follow-up rungs reused the trajectory"
        );
        assert!(stats.traj_hits >= 1, "the repeat rung was a pure hit");
        // The whole ladder computed exactly the deepest rung's steps.
        assert_eq!(stats.spill_steps, deepest.spilled as u64);

        // clear_cache drops the trajectory too: the same evaluation
        // recomputes its steps from zero.
        session.clear_cache();
        let again = session.evaluate(&l, Model::Unified, 4).unwrap();
        assert_eq!(again, deepest);
        assert_eq!(
            session.cache_stats().spill_steps,
            2 * deepest.spilled as u64,
            "a cleared trajectory cache recomputes the descent"
        );
    }

    #[test]
    fn escalated_evaluations_are_not_counted_as_hits() {
        let session = Session::new(Machine::clustered(6, 1));
        let l = kernels::recurrences::chain8();
        // Budget 1 sits below the descent's floor: the trajectory
        // exhausts and every evaluation re-runs the per-budget
        // escalation scan.
        let first = session.evaluate(&l, Model::Unified, 1).unwrap();
        let after_first = session.cache_stats();
        let second = session.evaluate(&l, Model::Unified, 1).unwrap();
        assert_eq!(second, first);
        let after_second = session.cache_stats();
        // The repeat recomputed escalation work — neither a hit nor a
        // resume, and no new spill steps.
        assert_eq!(after_second.traj_hits, after_first.traj_hits);
        assert_eq!(after_second.traj_resumes, after_first.traj_resumes);
        assert_eq!(after_second.spill_steps, after_first.spill_steps);
        // A checkpoint-served budget still counts as a real hit.
        let free = session.analyze(&l, Model::Unified).unwrap().regs;
        session.evaluate(&l, Model::Unified, free - 1).unwrap();
        assert_eq!(session.cache_stats().traj_hits, after_second.traj_hits + 1);
    }

    #[test]
    fn trajectories_are_isolated_per_model() {
        let session = Session::new(Machine::clustered(6, 1));
        let l = kernels::recurrences::chain8();
        let e_uni = session.evaluate(&l, Model::Unified, 4).unwrap();
        let before = session.cache_stats();
        // A different model neither hits nor resumes the unified
        // trajectory: it builds its own.
        session.evaluate(&l, Model::Partitioned, 4).unwrap();
        let after = session.cache_stats();
        assert_eq!(after.traj_hits, before.traj_hits);
        assert_eq!(after.traj_resumes, before.traj_resumes);
        // And the unified one is still intact: the deep budget repeats
        // identically, and a checkpoint-served budget is a pure hit.
        let repeat = session.evaluate(&l, Model::Unified, 4).unwrap();
        assert_eq!(repeat, e_uni);
        let free = session.analyze(&l, Model::Unified).unwrap().regs;
        let hits = session.cache_stats().traj_hits;
        session.evaluate(&l, Model::Unified, free - 1).unwrap();
        assert_eq!(session.cache_stats().traj_hits, hits + 1);
    }

    #[test]
    fn clear_cache_forces_rescheduling() {
        let session = Session::new(Machine::clustered(3, 1));
        let l = kernels::blas::dot();
        session.analyze(&l, Model::Unified).unwrap();
        session.clear_cache();
        session.analyze(&l, Model::Unified).unwrap();
        assert_eq!(session.cache_stats().misses, 2);
    }

    #[test]
    fn base_failure_names_the_loop() {
        use ncdrf_machine::{FuClass, FuGroup};
        let no_adder = Machine::new(
            "NOADD",
            vec![
                FuGroup::unified(FuClass::Multiplier, 3, 2),
                FuGroup::unified(FuClass::MemPort, 1, 2),
            ],
            1,
        )
        .unwrap();
        let session = Session::new(no_adder);
        let l = kernels::blas::daxpy();
        let err = session.analyze(&l, Model::Unified).unwrap_err();
        assert_eq!(err.loop_name, "daxpy");
        assert!(matches!(err.stage, PipelineStage::Schedule(_)));
    }
}
