//! Value classification and allocation for the non-consistent dual file.

use crate::alloc::UnifiedAlloc;
use crate::lifetime::{max_live_subset, Lifetime};
use crate::offsets_conflict;
use ncdrf_ddg::Loop;
use ncdrf_machine::{ClusterId, Machine};
use ncdrf_sched::Schedule;
use serde::{Deserialize, Serialize};

/// Where a value must reside in a non-consistent dual register file (§4 of
/// the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValueClass {
    /// Consumed by both clusters: replicated in both subfiles ("GL").
    Global,
    /// Consumed by one cluster only: stored only in that cluster's subfile
    /// ("LO"/"RO").
    Only(ClusterId),
}

impl ValueClass {
    /// Whether a value of this class occupies the given cluster's subfile.
    pub fn occupies(self, cluster: ClusterId) -> bool {
        match self {
            ValueClass::Global => true,
            ValueClass::Only(c) => c == cluster,
        }
    }
}

/// Classifies every lifetime's value by the clusters of its consumers.
///
/// A value read by operations scheduled in both clusters is
/// [`ValueClass::Global`]; a value read by a single cluster is local to it.
/// On a single-cluster machine everything is `Only(cluster 0)`.
pub fn classify(
    l: &Loop,
    machine: &Machine,
    sched: &Schedule,
    lifetimes: &[Lifetime],
) -> Vec<ValueClass> {
    let consumers = l.consumers();
    lifetimes
        .iter()
        .map(|lt| {
            let mut seen_left = false;
            let mut seen_right = false;
            let mut any = None;
            for &(c, _) in &consumers[lt.op.index()] {
                let cluster = sched.cluster(c, machine);
                any = Some(cluster);
                match cluster {
                    ClusterId::LEFT => seen_left = true,
                    _ => seen_right = true,
                }
            }
            match (seen_left, seen_right) {
                (true, true) => ValueClass::Global,
                (true, false) => ValueClass::Only(ClusterId::LEFT),
                (false, true) => ValueClass::Only(any.expect("consumer seen")),
                // Unconsumed values cannot occur in validated loops; place
                // them arbitrarily.
                (false, false) => ValueClass::Only(ClusterId::LEFT),
            }
        })
        .collect()
}

/// Per-class register pressures of a dual allocation (the quantities of the
/// paper's Tables 3–4: GL / LO / RO, and the per-subfile totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DualPressure {
    /// MaxLive of the global (replicated) values.
    pub global: u32,
    /// MaxLive of the left-only values.
    pub left: u32,
    /// MaxLive of the right-only values.
    pub right: u32,
    /// MaxLive of the left subfile's contents (globals + left-only).
    pub left_total: u32,
    /// MaxLive of the right subfile's contents (globals + right-only).
    pub right_total: u32,
}

impl DualPressure {
    /// Computes per-class pressures from lifetimes and their classes.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn new(lifetimes: &[Lifetime], classes: &[ValueClass], ii: u32) -> Self {
        assert_eq!(lifetimes.len(), classes.len());
        let subset = |keep: &dyn Fn(ValueClass) -> bool| -> Vec<Lifetime> {
            lifetimes
                .iter()
                .zip(classes)
                .filter(|(_, &c)| keep(c))
                .map(|(lt, _)| *lt)
                .collect()
        };
        let ml = |keep: &dyn Fn(ValueClass) -> bool| max_live_subset(&subset(keep), ii, |_| true);
        DualPressure {
            global: ml(&|c| c == ValueClass::Global),
            left: ml(&|c| c == ValueClass::Only(ClusterId::LEFT)),
            right: ml(&|c| c == ValueClass::Only(ClusterId::RIGHT)),
            left_total: ml(&|c| c.occupies(ClusterId::LEFT)),
            right_total: ml(&|c| c.occupies(ClusterId::RIGHT)),
        }
    }

    /// The dual-file requirement lower bound: the larger subfile pressure.
    pub fn requirement_bound(&self) -> u32 {
        self.left_total.max(self.right_total)
    }
}

/// Result of allocating on a non-consistent dual register file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DualAlloc {
    /// Registers required per subfile (the dual "register requirement" of
    /// the loop — the paper reports the maximum over the two clusters).
    pub regs: u32,
    /// Rotating offset of each lifetime; globals use the same offset in
    /// both subfiles.
    pub offsets: Vec<u32>,
    /// Class of each lifetime.
    pub classes: Vec<ValueClass>,
    /// Per-class pressure summary.
    pub pressure: DualPressure,
}

/// First-Fit allocation on the dual file: globals must be conflict-free in
/// *both* subfiles at the same offset; locals only in their own subfile.
/// The subfile size starts at the pressure lower bound and grows until the
/// packing succeeds.
///
/// # Panics
///
/// Panics if `classes.len() != lifetimes.len()` or `ii == 0`.
pub fn allocate_dual(lifetimes: &[Lifetime], classes: &[ValueClass], ii: u32) -> DualAlloc {
    assert!(ii > 0, "II must be positive");
    assert_eq!(lifetimes.len(), classes.len());
    let n = lifetimes.len();
    let pressure = DualPressure::new(lifetimes, classes, ii);
    if n == 0 || lifetimes.iter().all(Lifetime::is_empty) {
        return DualAlloc {
            regs: 0,
            offsets: vec![0; n],
            classes: classes.to_vec(),
            pressure,
        };
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (lifetimes[i].start, i));

    let files = [ClusterId::LEFT, ClusterId::RIGHT];
    let mut packer = crate::packer::OffsetPacker::new();
    let mut r = pressure.requirement_bound().max(1);
    'grow: loop {
        let mut offsets: Vec<Option<u32>> = vec![None; n];
        for &v in &order {
            if lifetimes[v].is_empty() {
                offsets[v] = Some(0);
                continue;
            }
            packer.begin(r);
            let mut saturated = false;
            for (u, off_u) in offsets.iter().enumerate() {
                let Some(off_u) = off_u else { continue };
                // u and v interfere only if they share some subfile.
                let share = files
                    .iter()
                    .any(|&f| classes[u].occupies(f) && classes[v].occupies(f));
                if !share {
                    continue;
                }
                if !packer.forbid(&lifetimes[v], &lifetimes[u], ii, *off_u) {
                    saturated = true;
                    break;
                }
            }
            let placed = if saturated { None } else { packer.first_free() };
            match placed {
                Some(cand) => offsets[v] = Some(cand),
                None => {
                    r += 1;
                    continue 'grow;
                }
            }
        }
        return DualAlloc {
            regs: r,
            offsets: offsets.into_iter().map(|o| o.unwrap()).collect(),
            classes: classes.to_vec(),
            pressure,
        };
    }
}

/// Independently re-checks a dual allocation: any two lifetimes sharing a
/// subfile must be conflict-free at their offsets. Returns the offending
/// pair, if any.
pub fn verify_dual(
    lifetimes: &[Lifetime],
    ii: u32,
    alloc: &DualAlloc,
) -> Result<(), (usize, usize)> {
    if alloc.regs == 0 {
        return Ok(());
    }
    let files = [ClusterId::LEFT, ClusterId::RIGHT];
    for a in 0..lifetimes.len() {
        for b in (a + 1)..lifetimes.len() {
            let share = files
                .iter()
                .any(|&f| alloc.classes[a].occupies(f) && alloc.classes[b].occupies(f));
            if !share {
                continue;
            }
            if offsets_conflict(
                &lifetimes[a],
                &lifetimes[b],
                ii,
                alloc.offsets[a] as i64,
                alloc.offsets[b] as i64,
                alloc.regs as i64,
            ) {
                return Err((a, b));
            }
        }
    }
    Ok(())
}

/// Convenience: a [`UnifiedAlloc`]-shaped view of a dual allocation
/// (same offsets, subfile size), for consumers that only need offsets.
impl From<&DualAlloc> for UnifiedAlloc {
    fn from(d: &DualAlloc) -> Self {
        UnifiedAlloc {
            regs: d.regs,
            offsets: d.offsets.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf_ddg::OpId;

    fn lt(i: usize, start: u32, end: u32) -> Lifetime {
        Lifetime {
            op: OpId::from_index(i),
            start,
            end,
        }
    }

    #[test]
    fn locals_in_different_clusters_share_offsets() {
        // Two overlapping values, one left-only and one right-only: they
        // never share a subfile, so 1 register per subfile suffices... but
        // each still needs its own instance space within its subfile.
        let lts = [lt(0, 0, 4), lt(1, 0, 4)];
        let classes = [
            ValueClass::Only(ClusterId::LEFT),
            ValueClass::Only(ClusterId::RIGHT),
        ];
        let a = allocate_dual(&lts, &classes, 4);
        assert_eq!(a.regs, 1);
        assert!(verify_dual(&lts, 4, &a).is_ok());
    }

    #[test]
    fn globals_count_in_both_subfiles() {
        let lts = [lt(0, 0, 4), lt(1, 0, 4)];
        let classes = [ValueClass::Global, ValueClass::Only(ClusterId::RIGHT)];
        let a = allocate_dual(&lts, &classes, 4);
        assert_eq!(a.regs, 2); // right subfile holds both values
        assert_eq!(a.pressure.left_total, 1);
        assert_eq!(a.pressure.right_total, 2);
        assert!(verify_dual(&lts, 4, &a).is_ok());
    }

    #[test]
    fn pressure_matches_paper_shape() {
        // The §4.1 example at II=1 (classes from Table 3): GL 13, LO 13,
        // RO 16 -> max cluster 29.
        let lts = [
            lt(0, 0, 13),  // L1  GL
            lt(1, 0, 7),   // L2  LO
            lt(2, 1, 7),   // M3  LO
            lt(3, 4, 10),  // A4  RO
            lt(4, 7, 13),  // M5  RO
            lt(5, 10, 14), // A6  RO
        ];
        let classes = [
            ValueClass::Global,
            ValueClass::Only(ClusterId::LEFT),
            ValueClass::Only(ClusterId::LEFT),
            ValueClass::Only(ClusterId::RIGHT),
            ValueClass::Only(ClusterId::RIGHT),
            ValueClass::Only(ClusterId::RIGHT),
        ];
        let p = DualPressure::new(&lts, &classes, 1);
        assert_eq!(p.global, 13);
        assert_eq!(p.left, 13);
        assert_eq!(p.right, 16);
        assert_eq!(p.left_total, 26);
        assert_eq!(p.right_total, 29);
        let a = allocate_dual(&lts, &classes, 1);
        assert_eq!(a.regs, 29);
        assert!(verify_dual(&lts, 1, &a).is_ok());
    }

    #[test]
    fn all_global_degenerates_to_unified() {
        let lts = [lt(0, 0, 5), lt(1, 2, 9), lt(2, 4, 6)];
        let classes = [ValueClass::Global; 3];
        let dual = allocate_dual(&lts, &classes, 2);
        let uni = crate::alloc::allocate_unified(&lts, 2);
        assert_eq!(dual.regs, uni.regs);
    }

    #[test]
    fn empty_input() {
        let a = allocate_dual(&[], &[], 3);
        assert_eq!(a.regs, 0);
        assert!(verify_dual(&[], 3, &a).is_ok());
    }
}
