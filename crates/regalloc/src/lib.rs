//! Register allocation for modulo-scheduled loops on rotating register
//! files, for unified and non-consistent dual organisations.
//!
//! Following the paper (§2, §4): the lifetime of a value starts when its
//! producer is *issued* and ends when its last consumer *finishes* (this
//! makes the code interruptible/restartable). With initiation interval II,
//! a new instance of every value is born each II cycles, so a value of
//! lifetime `l` has up to `ceil(l/II)` concurrently-live instances; the
//! allocator packs these helical lifetimes onto a rotating register file
//! using the **Wands-Only / First-Fit** strategy of Rau et al. (PLDI'92),
//! which the paper selects as its allocator.
//!
//! For the **non-consistent dual register file** (§4), every value is
//! classified by the clusters of its consumers — [`ValueClass::Global`]
//! when both clusters read it, otherwise local to one cluster — and each
//! subfile packs its globals + locals, with globals pinned to the same
//! register in both subfiles.
//!
//! # Example
//!
//! ```
//! use ncdrf_ddg::{LoopBuilder, Weight};
//! use ncdrf_machine::Machine;
//! use ncdrf_sched::modulo_schedule;
//! use ncdrf_regalloc::{lifetimes, max_live, allocate_unified};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = LoopBuilder::new("axpy");
//! let a = b.invariant("a", 3.0);
//! let x = b.array_in("x");
//! let z = b.array_out("z");
//! let l = b.load("L", x, 0);
//! let m = b.mul("M", l.now(), a);
//! b.store("S", z, 0, m.now());
//! let lp = b.finish(Weight::default())?;
//! let machine = Machine::clustered(3, 1);
//! let sched = modulo_schedule(&lp, &machine)?;
//! let lts = lifetimes(&lp, &machine, &sched)?;
//! let alloc = allocate_unified(&lts, sched.ii());
//! assert!(alloc.regs >= max_live(&lts, sched.ii()));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod alloc;
mod dual;
mod lifetime;
mod multi;
mod packer;
mod sacks;

pub use alloc::{allocate_unified, allocate_unified_with, verify_unified, FitPolicy, UnifiedAlloc};
pub use dual::{allocate_dual, classify, verify_dual, DualAlloc, DualPressure, ValueClass};
pub use lifetime::{lifetimes, lifetimes_into, max_live, max_live_subset, Lifetime};
pub use multi::{
    allocate_multi, classify_multi, multi_pressure, verify_multi, ClusterSet, MultiAlloc,
};
pub use sacks::{assign_sacks, single_use_fraction, sole_consumer, SackAssignment, SackConfig};

pub(crate) fn div_floor(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

pub(crate) fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    -((-a).div_euclid(b))
}

/// Whether two lifetimes placed at rotating offsets `ru`, `rv` in a file of
/// `r` registers ever occupy the same physical register at the same time,
/// with initiation interval `ii`.
///
/// Instance `k` of value `u` lives in physical register `(ru + k) mod r`
/// during `[u.start + k*ii, u.end + k*ii)`; the pairwise test reduces to
/// asking whether some iteration delta `d ≡ ru - rv (mod r)` makes the base
/// intervals overlap.
pub(crate) fn offsets_conflict(
    u: &Lifetime,
    v: &Lifetime,
    ii: u32,
    ru: i64,
    rv: i64,
    r: i64,
) -> bool {
    debug_assert!(r > 0);
    let ii = ii as i64;
    let (su, eu) = (u.start as i64, u.end as i64);
    let (sv, ev) = (v.start as i64, v.end as i64);
    if eu <= su || ev <= sv {
        return false; // empty lifetimes never conflict
    }
    // Overlap condition for delta d: su < ev + d*ii  and  sv + d*ii < eu.
    let lo = div_floor(su - ev, ii) + 1; // smallest d with d*ii > su - ev
    let hi = div_ceil(eu - sv, ii) - 1; // largest d with d*ii < eu - sv
    if lo > hi {
        return false;
    }
    let delta = (ru - rv).rem_euclid(r);
    let d0 = lo + (delta - lo).rem_euclid(r);
    d0 <= hi
}

#[cfg(test)]
mod conflict_tests {
    use super::*;
    use ncdrf_ddg::OpId;

    fn lt(start: u32, end: u32) -> Lifetime {
        Lifetime {
            op: OpId::from_index(0),
            start,
            end,
        }
    }

    #[test]
    fn same_offset_overlapping_conflicts() {
        let u = lt(0, 5);
        let v = lt(2, 6);
        assert!(offsets_conflict(&u, &v, 10, 3, 3, 8));
    }

    #[test]
    fn same_offset_disjoint_no_conflict_with_large_ii() {
        let u = lt(0, 2);
        let v = lt(5, 7);
        // II large enough that no other iteration's instances reach back.
        assert!(!offsets_conflict(&u, &v, 100, 3, 3, 8));
    }

    #[test]
    fn long_lifetime_wraps_into_other_offsets() {
        // Two lifetimes of 13 at II=1 have 13 live instances each at every
        // cycle, so 26 registers are needed: in a 26-register file offset
        // distance 13 is the unique safe separation, while in a 20-register
        // file *every* placement conflicts (the helices wrap around).
        let u = lt(0, 13);
        let v = lt(0, 13);
        for delta in 1..13 {
            assert!(
                offsets_conflict(&u, &v, 1, 0, delta, 26),
                "delta {delta} should conflict in r=26"
            );
            assert!(
                offsets_conflict(&u, &v, 1, 0, 26 - delta, 26),
                "delta {} should conflict in r=26",
                26 - delta
            );
        }
        assert!(!offsets_conflict(&u, &v, 1, 0, 13, 26));
        for delta in 0..20 {
            assert!(
                offsets_conflict(&u, &v, 1, 0, delta, 20),
                "r=20 cannot hold 26 live instances (delta {delta})"
            );
        }
    }

    #[test]
    fn conflict_is_symmetric() {
        let u = lt(3, 11);
        let v = lt(6, 9);
        for r in 2..12i64 {
            for ru in 0..r {
                for rv in 0..r {
                    assert_eq!(
                        offsets_conflict(&u, &v, 2, ru, rv, r),
                        offsets_conflict(&v, &u, 2, rv, ru, r),
                        "asymmetry at r={r} ru={ru} rv={rv}"
                    );
                }
            }
        }
    }

    #[test]
    fn brute_force_agreement() {
        // Compare the closed-form test against explicit instance
        // enumeration over a window.
        let cases = [
            (lt(0, 7), lt(1, 4), 2u32, 5i64),
            (lt(2, 9), lt(0, 13), 3, 6),
            (lt(0, 1), lt(0, 1), 1, 2),
            (lt(4, 20), lt(5, 8), 4, 7),
        ];
        for (u, v, ii, r) in cases {
            for ru in 0..r {
                for rv in 0..r {
                    let fast = offsets_conflict(&u, &v, ii, ru, rv, r);
                    let mut slow = false;
                    for ku in -30i64..30 {
                        for kv in -30i64..30 {
                            let phys_u = (ru + ku).rem_euclid(r);
                            let phys_v = (rv + kv).rem_euclid(r);
                            if phys_u != phys_v {
                                continue;
                            }
                            let (us, ue) = (
                                u.start as i64 + ku * ii as i64,
                                u.end as i64 + ku * ii as i64,
                            );
                            let (vs, ve) = (
                                v.start as i64 + kv * ii as i64,
                                v.end as i64 + kv * ii as i64,
                            );
                            if us < ve && vs < ue {
                                slow = true;
                            }
                        }
                    }
                    assert_eq!(fast, slow, "mismatch ii={ii} r={r} ru={ru} rv={rv}");
                }
            }
        }
    }
}
