//! First-Fit packing of lifetimes onto a unified rotating register file.

use crate::lifetime::{max_live, Lifetime};
use crate::offsets_conflict;
use crate::packer::OffsetPacker;
use serde::{Deserialize, Serialize};

/// The result of allocating a loop's values on a unified rotating register
/// file: a file size and, for every lifetime (parallel to the input slice),
/// the chosen rotating offset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnifiedAlloc {
    /// Registers required (the paper's "register requirement" of a loop).
    pub regs: u32,
    /// Rotating offset of each lifetime, parallel to the allocated slice.
    pub offsets: Vec<u32>,
}

/// Wands-Only / First-Fit allocation: lifetimes are processed in start-time
/// order and each takes the lowest conflict-free rotating offset; the file
/// size starts at MaxLive and grows until the packing succeeds.
///
/// Returns `regs == 0` for loops with no register values.
pub fn allocate_unified(lifetimes: &[Lifetime], ii: u32) -> UnifiedAlloc {
    allocate_unified_with(lifetimes, ii, FitPolicy::FirstFit)
}

/// How a lifetime picks among its conflict-free rotating offsets.
///
/// Rau et al. (PLDI'92) compare several packing disciplines and find them
/// near-equivalent for the Wands-Only strategy; the paper adopts First-Fit
/// "due to its simplicity". Best-Fit is provided for the
/// `ablation_fit` benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum FitPolicy {
    /// The lowest conflict-free offset (the paper's choice).
    #[default]
    FirstFit,
    /// The lowest conflict-free offset that is *snug* — adjacent (offset
    /// minus one) to an already-occupied position — falling back to the
    /// lowest free offset when no snug position exists. Packs wands
    /// against each other to keep free space contiguous.
    BestFit,
}

/// [`allocate_unified`] with an explicit packing discipline.
///
/// Returns `regs == 0` for loops with no register values.
pub fn allocate_unified_with(lifetimes: &[Lifetime], ii: u32, fit: FitPolicy) -> UnifiedAlloc {
    assert!(ii > 0, "II must be positive");
    let n = lifetimes.len();
    if n == 0 || lifetimes.iter().all(Lifetime::is_empty) {
        return UnifiedAlloc {
            regs: 0,
            offsets: vec![0; n],
        };
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (lifetimes[i].start, i));

    let mut packer = OffsetPacker::new();
    let mut r = max_live(lifetimes, ii).max(1);
    'grow: loop {
        let mut offsets: Vec<Option<u32>> = vec![None; n];
        for &v in &order {
            if lifetimes[v].is_empty() {
                offsets[v] = Some(0);
                continue;
            }
            packer.begin(r);
            let mut saturated = false;
            for (u, off_u) in offsets.iter().enumerate() {
                let Some(off_u) = off_u else { continue };
                if !packer.forbid(&lifetimes[v], &lifetimes[u], ii, *off_u) {
                    saturated = true;
                    break;
                }
            }
            let chosen = if saturated {
                None
            } else {
                match fit {
                    FitPolicy::FirstFit => packer.first_free(),
                    FitPolicy::BestFit => {
                        let forbidden = packer.forbidden_flags();
                        let free = || (0..r).filter(|&c| !forbidden[c as usize]);
                        let snug = free().find(|&c| {
                            let below = (c as i64 - 1).rem_euclid(r as i64) as usize;
                            forbidden[below]
                        });
                        snug.or_else(|| free().next())
                    }
                }
            };
            match chosen {
                Some(c) => offsets[v] = Some(c),
                None => {
                    r += 1;
                    continue 'grow;
                }
            }
        }
        return UnifiedAlloc {
            regs: r,
            offsets: offsets.into_iter().map(|o| o.unwrap()).collect(),
        };
    }
}

/// Independently re-checks an allocation: no pair of lifetimes may conflict
/// at their assigned offsets. Returns the offending pair, if any.
pub fn verify_unified(
    lifetimes: &[Lifetime],
    ii: u32,
    alloc: &UnifiedAlloc,
) -> Result<(), (usize, usize)> {
    if alloc.regs == 0 {
        return Ok(());
    }
    for a in 0..lifetimes.len() {
        for b in (a + 1)..lifetimes.len() {
            if offsets_conflict(
                &lifetimes[a],
                &lifetimes[b],
                ii,
                alloc.offsets[a] as i64,
                alloc.offsets[b] as i64,
                alloc.regs as i64,
            ) {
                return Err((a, b));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf_ddg::OpId;

    fn lt(i: usize, start: u32, end: u32) -> Lifetime {
        Lifetime {
            op: OpId::from_index(i),
            start,
            end,
        }
    }

    #[test]
    fn empty_input_needs_no_registers() {
        let a = allocate_unified(&[], 3);
        assert_eq!(a.regs, 0);
    }

    #[test]
    fn single_long_value_at_ii_one() {
        // Lifetime 13 at II=1 -> 13 registers (the paper's L1).
        let lts = [lt(0, 0, 13)];
        let a = allocate_unified(&lts, 1);
        assert_eq!(a.regs, 13);
        assert!(verify_unified(&lts, 1, &a).is_ok());
    }

    #[test]
    fn sum_of_lifetimes_at_ii_one() {
        // At II=1 every value needs `len` registers and packing is exact:
        // the example loop's 13+7+6+6+6+4 = 42.
        let lts = [
            lt(0, 0, 13),
            lt(1, 0, 7),
            lt(2, 1, 7),
            lt(3, 4, 10),
            lt(4, 7, 13),
            lt(5, 10, 14),
        ];
        let a = allocate_unified(&lts, 1);
        assert_eq!(a.regs, 42);
        assert!(verify_unified(&lts, 1, &a).is_ok());
    }

    #[test]
    fn disjoint_lifetimes_share_a_register_at_large_ii() {
        let lts = [lt(0, 0, 2), lt(1, 3, 5)];
        let a = allocate_unified(&lts, 10);
        assert_eq!(a.regs, 1);
        assert_eq!(a.offsets[0], a.offsets[1]);
        assert!(verify_unified(&lts, 10, &a).is_ok());
    }

    #[test]
    fn allocation_never_below_max_live_and_close_to_it() {
        // A mildly adversarial mix; First-Fit should stay within a couple
        // of registers of MaxLive.
        let lts = [
            lt(0, 0, 9),
            lt(1, 1, 4),
            lt(2, 2, 12),
            lt(3, 3, 6),
            lt(4, 4, 8),
            lt(5, 5, 17),
            lt(6, 6, 7),
        ];
        for ii in 1..6 {
            let ml = max_live(&lts, ii);
            let a = allocate_unified(&lts, ii);
            assert!(a.regs >= ml);
            // First-Fit is near-optimal but not exact; Rau et al. report a
            // small additive gap, which these inputs reproduce.
            assert!(a.regs <= ml + 4, "ii={ii}: {} vs maxlive {}", a.regs, ml);
            assert!(verify_unified(&lts, ii, &a).is_ok());
        }
    }

    #[test]
    fn verify_rejects_bad_allocation() {
        let lts = [lt(0, 0, 5), lt(1, 2, 6)];
        let bad = UnifiedAlloc {
            regs: 1,
            offsets: vec![0, 0],
        };
        assert_eq!(verify_unified(&lts, 10, &bad), Err((0, 1)));
    }
}

#[cfg(test)]
mod fit_tests {
    use super::*;
    use ncdrf_ddg::OpId;

    fn lt(i: usize, start: u32, end: u32) -> Lifetime {
        Lifetime {
            op: OpId::from_index(i),
            start,
            end,
        }
    }

    #[test]
    fn best_fit_is_valid_and_comparable() {
        let lts = [
            lt(0, 0, 13),
            lt(1, 0, 7),
            lt(2, 1, 7),
            lt(3, 4, 10),
            lt(4, 7, 13),
            lt(5, 10, 14),
        ];
        for ii in [1u32, 2, 3] {
            let ff = allocate_unified_with(&lts, ii, FitPolicy::FirstFit);
            let bf = allocate_unified_with(&lts, ii, FitPolicy::BestFit);
            assert!(verify_unified(&lts, ii, &ff).is_ok());
            assert!(verify_unified(&lts, ii, &bf).is_ok());
            // Both disciplines sit within one register of each other on
            // wand-style workloads (Rau et al.'s observation).
            assert!(ff.regs.abs_diff(bf.regs) <= 1, "ii={ii}");
        }
    }

    #[test]
    fn default_policy_is_first_fit() {
        let lts = [lt(0, 0, 5), lt(1, 2, 9)];
        assert_eq!(
            allocate_unified(&lts, 2),
            allocate_unified_with(&lts, 2, FitPolicy::default())
        );
    }
}
