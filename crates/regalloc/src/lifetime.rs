//! Value lifetimes and the MaxLive lower bound.

use ncdrf_ddg::{Loop, OpId};
use ncdrf_machine::{Machine, MachineError};
use ncdrf_sched::Schedule;
use serde::{Deserialize, Serialize};

/// The lifetime of one loop-variant value under a schedule, in absolute
/// cycles of iteration 0.
///
/// Per the paper's definition (§2): starts when the producer issues, ends
/// when the last consumer *finishes* (issue + latency, plus `dist * II`
/// for cross-iteration consumers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lifetime {
    /// The producing operation.
    pub op: OpId,
    /// Issue cycle of the producer.
    pub start: u32,
    /// Cycle after the last consumer finishes (exclusive).
    pub end: u32,
}

impl Lifetime {
    /// Length in cycles.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the lifetime is empty (never true for validated loops,
    /// whose values always have a consumer).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Number of concurrently-live instances with initiation interval
    /// `ii`: `ceil(len / ii)`.
    pub fn instances(&self, ii: u32) -> u32 {
        self.len().div_ceil(ii)
    }
}

/// Computes the lifetime of every value-producing operation of `l` under
/// `sched` (stores are skipped — they produce no value).
///
/// # Errors
///
/// Returns [`MachineError::Unserved`] if the machine cannot execute some
/// operation.
pub fn lifetimes(
    l: &Loop,
    machine: &Machine,
    sched: &Schedule,
) -> Result<Vec<Lifetime>, MachineError> {
    let consumers = l.consumers();
    let mut out = Vec::new();
    lifetimes_into(l, machine, sched, &consumers, &mut out)?;
    Ok(out)
}

/// [`lifetimes`] into a caller-owned buffer, with the consumer lists
/// precomputed (see [`Loop::consumers_into`]): the allocation-free
/// variant the spill descent's victim selection runs once per spill
/// step. `out` is cleared first; contents are identical to
/// [`lifetimes`].
///
/// # Errors
///
/// Returns [`MachineError::Unserved`] if the machine cannot execute some
/// operation.
pub fn lifetimes_into(
    l: &Loop,
    machine: &Machine,
    sched: &Schedule,
    consumers: &[Vec<(OpId, u32)>],
    out: &mut Vec<Lifetime>,
) -> Result<(), MachineError> {
    let ii = sched.ii();
    out.clear();
    for (id, op) in l.iter_ops() {
        if !op.kind().produces_value() {
            continue;
        }
        let start = sched.start(id);
        let mut end = start; // empty if no consumer (validation forbids it)
        for &(c, dist) in &consumers[id.index()] {
            let lat = machine.latency(l.op(c).kind())?;
            end = end.max(sched.start(c) + dist * ii + lat);
        }
        out.push(Lifetime { op: id, start, end });
    }
    Ok(())
}

/// MaxLive: the maximum, over the II kernel cycles, of the number of
/// simultaneously-live value instances. A lower bound on the registers any
/// allocation needs.
pub fn max_live(lifetimes: &[Lifetime], ii: u32) -> u32 {
    max_live_subset(lifetimes, ii, |_| true)
}

/// MaxLive restricted to the lifetimes selected by `keep` (used for the
/// per-class pressures of the dual organisation and by the swapping pass).
pub fn max_live_subset<F: Fn(&Lifetime) -> bool>(lifetimes: &[Lifetime], ii: u32, keep: F) -> u32 {
    assert!(ii > 0, "II must be positive");
    let ii_i = ii as i64;
    let mut best = 0u32;
    for t in 0..ii as i64 {
        let mut live = 0i64;
        for lt in lifetimes.iter().filter(|lt| keep(lt)) {
            if lt.is_empty() {
                continue;
            }
            // Instances k with start + k*ii <= t < end + k*ii.
            let hi = crate::div_floor(t - lt.start as i64, ii_i);
            let lo = crate::div_floor(t - lt.end as i64, ii_i);
            live += hi - lo;
        }
        best = best.max(live.max(0) as u32);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf_ddg::{LoopBuilder, Weight};
    use ncdrf_machine::Machine;
    use ncdrf_sched::modulo_schedule;

    #[test]
    fn instances_is_ceil_div() {
        let lt = Lifetime {
            op: OpId::from_index(0),
            start: 2,
            end: 15,
        };
        assert_eq!(lt.len(), 13);
        assert_eq!(lt.instances(1), 13);
        assert_eq!(lt.instances(2), 7);
        assert_eq!(lt.instances(13), 1);
        assert_eq!(lt.instances(14), 1);
    }

    #[test]
    fn max_live_single_value() {
        let lts = [Lifetime {
            op: OpId::from_index(0),
            start: 0,
            end: 13,
        }];
        assert_eq!(max_live(&lts, 1), 13);
        assert_eq!(max_live(&lts, 2), 7);
        assert_eq!(max_live(&lts, 13), 1);
    }

    #[test]
    fn max_live_staggered_values() {
        // Two values each of length 2 at II=2, starting at 0 and 1: one
        // live at every cycle from each -> 2 at cycle 1? Enumerate:
        // v1 instances live [0,2)+2k ; v2 live [1,3)+2k.
        // cycle 0: v1 live (k=0), v2 live (k=-1 covers [-1,1) -> cycle 0
        // yes). => 2. cycle 1: v1 no (k=0 covers 0,1 -> 1 yes!) v1 live at
        // 1, v2 live at 1. => 2.
        let lts = [
            Lifetime {
                op: OpId::from_index(0),
                start: 0,
                end: 2,
            },
            Lifetime {
                op: OpId::from_index(1),
                start: 1,
                end: 3,
            },
        ];
        assert_eq!(max_live(&lts, 2), 2);
        assert_eq!(max_live(&lts, 1), 4);
        assert_eq!(max_live(&lts, 3), 2);
    }

    #[test]
    fn lifetime_ends_at_last_consumer_finish() {
        // L (lat 1) -> M (lat 3) chain: lifetime of L = start(M) + 3 -
        // start(L).
        let mut b = LoopBuilder::new("t");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let ld = b.load("L", x, 0);
        let m = b.mul("M", ld.now(), ld.now());
        b.store("S", z, 0, m.now());
        let lp = b.finish(Weight::default()).unwrap();
        let machine = Machine::clustered(3, 1);
        let sched = modulo_schedule(&lp, &machine).unwrap();
        let lts = lifetimes(&lp, &machine, &sched).unwrap();
        let lt_l = lts.iter().find(|lt| lt.op == ld).unwrap();
        assert_eq!(lt_l.start, sched.start(ld));
        assert_eq!(lt_l.end, sched.start(m) + 3);
        // The store consumes M with latency 1.
        let lt_m = lts.iter().find(|lt| lt.op == m).unwrap();
        let st = lp.find_op("S").unwrap();
        assert_eq!(lt_m.end, sched.start(st) + 1);
    }

    #[test]
    fn cross_iteration_consumer_extends_lifetime() {
        // s = s + x: the add consumes its own value one iteration later,
        // so the lifetime includes II + latency.
        let mut b = LoopBuilder::new("sum");
        let x = b.array_in("x");
        let ld = b.load("L", x, 0);
        let s = b.reserve_add("S");
        b.bind(s, [ld.now(), s.prev(1)]);
        let lp = b.finish(Weight::default()).unwrap();
        let machine = Machine::clustered(3, 1);
        let sched = modulo_schedule(&lp, &machine).unwrap();
        let lts = lifetimes(&lp, &machine, &sched).unwrap();
        let lt_s = lts.iter().find(|lt| lt.op == s).unwrap();
        assert_eq!(lt_s.len(), sched.ii() + 3);
    }

    #[test]
    fn stores_have_no_lifetime() {
        let mut b = LoopBuilder::new("t");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let ld = b.load("L", x, 0);
        b.store("S", z, 0, ld.now());
        let lp = b.finish(Weight::default()).unwrap();
        let machine = Machine::clustered(3, 1);
        let sched = modulo_schedule(&lp, &machine).unwrap();
        let lts = lifetimes(&lp, &machine, &sched).unwrap();
        assert_eq!(lts.len(), 1); // only the load's value
    }
}
