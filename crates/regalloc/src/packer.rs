//! Fast first-fit offset search for rotating-file packing.
//!
//! The naive first-fit tests every candidate offset against every placed
//! lifetime through [`offsets_conflict`](crate::offsets_conflict) —
//! `O(r · n)` conflict tests per value. But for a fixed pair of lifetimes
//! the conflicting iteration deltas form one contiguous window `[lo, hi]`,
//! so the candidate offsets a placed value forbids are exactly one
//! *circular interval* `[off_u + lo, off_u + hi] (mod r)`. The packer
//! accumulates those intervals in a difference array and reads off the
//! lowest free offset with one prefix-sum sweep: `O(n + r)` per value,
//! with results identical to the naive search.

use crate::lifetime::Lifetime;
use crate::{div_ceil, div_floor};

/// Reusable forbidden-interval accumulator for one file of `r` registers.
#[derive(Debug, Default)]
pub(crate) struct OffsetPacker {
    /// Difference array over offsets `0..r` (one slack slot for interval
    /// ends); `prefix_sum(diff)[c] > 0` means offset `c` conflicts.
    diff: Vec<i32>,
    r: u32,
}

impl OffsetPacker {
    pub(crate) fn new() -> Self {
        OffsetPacker::default()
    }

    /// Starts the search for one value's offset in a file of `r`
    /// registers, clearing previous intervals.
    pub(crate) fn begin(&mut self, r: u32) {
        self.r = r;
        self.diff.clear();
        self.diff.resize(r as usize + 1, 0);
    }

    /// Forbids every candidate offset of `v` that would conflict with the
    /// placed lifetime `u` at offset `off_u`. Returns `false` when the
    /// pair conflicts at *every* offset (the file is too small), in which
    /// case the caller can stop early.
    ///
    /// Matches `offsets_conflict(v, u, ii, cand, off_u, r)` for every
    /// `cand` in `0..r`.
    pub(crate) fn forbid(&mut self, v: &Lifetime, u: &Lifetime, ii: u32, off_u: u32) -> bool {
        if v.is_empty() || u.is_empty() {
            return true;
        }
        let r = self.r as i64;
        let ii = ii as i64;
        // Conflicting deltas d (with cand ≡ off_u + d mod r):
        // v.start < u.end + d*ii  and  u.start + d*ii < v.end.
        let lo = div_floor(v.start as i64 - u.end as i64, ii) + 1;
        let hi = div_ceil(v.end as i64 - u.start as i64, ii) - 1;
        if lo > hi {
            return true;
        }
        let len = hi - lo + 1;
        if len >= r {
            return false;
        }
        let start = (off_u as i64 + lo).rem_euclid(r) as usize;
        let (len, r) = (len as usize, r as usize);
        self.diff[start] += 1;
        if start + len <= r {
            self.diff[start + len] -= 1;
        } else {
            // The interval wraps: split at the file boundary.
            self.diff[r] -= 1;
            self.diff[0] += 1;
            self.diff[start + len - r] -= 1;
        }
        true
    }

    /// The lowest conflict-free offset, if any.
    pub(crate) fn first_free(&self) -> Option<u32> {
        let mut acc = 0i32;
        for c in 0..self.r as usize {
            acc += self.diff[c];
            if acc == 0 {
                return Some(c as u32);
            }
        }
        None
    }

    /// Conflict flags for all offsets (`true` = forbidden), for packing
    /// disciplines that need the full free set (Best-Fit).
    pub(crate) fn forbidden_flags(&self) -> Vec<bool> {
        let mut acc = 0i32;
        (0..self.r as usize)
            .map(|c| {
                acc += self.diff[c];
                acc > 0
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offsets_conflict;
    use ncdrf_ddg::OpId;

    fn lt(start: u32, end: u32) -> Lifetime {
        Lifetime {
            op: OpId::from_index(0),
            start,
            end,
        }
    }

    /// The packer must agree with `offsets_conflict` on every candidate,
    /// across a grid of lifetime shapes, IIs and file sizes.
    #[test]
    fn packer_matches_pairwise_conflict_test() {
        let shapes = [
            lt(0, 1),
            lt(0, 5),
            lt(2, 6),
            lt(0, 13),
            lt(7, 9),
            lt(3, 20),
            lt(5, 5), // empty
        ];
        let mut packer = OffsetPacker::new();
        for v in &shapes {
            for u in &shapes {
                for ii in [1u32, 2, 3, 7] {
                    for r in [1u32, 2, 5, 8, 26] {
                        for off_u in 0..r {
                            packer.begin(r);
                            let sat = packer.forbid(v, u, ii, off_u);
                            let flags = packer.forbidden_flags();
                            for cand in 0..r {
                                let expect =
                                    offsets_conflict(v, u, ii, cand as i64, off_u as i64, r as i64);
                                let got = if sat { flags[cand as usize] } else { true };
                                assert_eq!(
                                    expect, got,
                                    "v={v:?} u={u:?} ii={ii} r={r} off_u={off_u} cand={cand}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn intervals_accumulate_across_placed_values() {
        // Two placed values with II=10, r=4: each forbids one offset.
        let mut packer = OffsetPacker::new();
        packer.begin(4);
        assert!(packer.forbid(&lt(0, 5), &lt(2, 6), 10, 1));
        assert!(packer.forbid(&lt(0, 5), &lt(2, 6), 10, 3));
        let flags = packer.forbidden_flags();
        assert_eq!(flags, vec![false, true, false, true]);
        assert_eq!(packer.first_free(), Some(0));
    }
}
