//! The "sack" register-file organisation of Llosa et al. (CONPAR'94,
//! the paper's ref [22]) — implemented as a related-work comparison
//! point.
//!
//! A sack organisation pairs a small, fully-multiported **central file**
//! with one or more cheap, port-limited subfiles ("**sacks**", one read
//! port and one write port each). It exploits the same §3.3 observation
//! as the NCDRF — most register instances are read exactly once — but in
//! a different direction: a single-use value can live in a sack if its
//! one write and one read can be steered through the sack's ports; only
//! multi-use (or port-conflicting) values pay for the central file.
//!
//! On a modulo-scheduled loop the port constraint is periodic: a sack's
//! read port is busy at kernel cycle `start(consumer) mod II`, its write
//! port at `(start(producer) + latency) mod II`, for every value it
//! hosts.

use crate::alloc::{allocate_unified, UnifiedAlloc};
use crate::lifetime::Lifetime;
use ncdrf_ddg::{Loop, OpId};
use ncdrf_machine::{Machine, MachineError};
use ncdrf_sched::Schedule;
use serde::{Deserialize, Serialize};

/// Configuration of a sack organisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SackConfig {
    /// Number of sacks (each with 1 read + 1 write port).
    pub sacks: u32,
}

impl Default for SackConfig {
    fn default() -> Self {
        SackConfig { sacks: 4 }
    }
}

/// The result of steering values between the central file and the sacks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SackAssignment {
    /// Per lifetime: `Some(sack)` or `None` for the central file.
    pub sack_of: Vec<Option<u32>>,
    /// Allocation of the central-file values (offsets indexed like the
    /// *full* lifetime slice; sack values hold offset 0 there and must be
    /// looked up in `sack_allocs`).
    pub central: UnifiedAlloc,
    /// Per-sack register allocation.
    pub sack_allocs: Vec<UnifiedAlloc>,
    /// Values hosted by sacks.
    pub sacked: usize,
}

impl SackAssignment {
    /// Registers in the (expensive, multiported) central file.
    pub fn central_regs(&self) -> u32 {
        self.central.regs
    }

    /// Total registers across the (cheap, single-ported) sacks.
    pub fn sack_regs(&self) -> u32 {
        self.sack_allocs.iter().map(|a| a.regs).sum()
    }
}

/// Steers single-use values into sacks (greedy, longest lifetime first)
/// and allocates both levels.
///
/// A value qualifies for a sack when it has exactly one consuming operand
/// and some sack has its read slot (`start(consumer) mod II`) and write
/// slot (`(start(producer) + latency) mod II`) free. Everything else goes
/// to the central file.
///
/// # Errors
///
/// Returns [`MachineError::Unserved`] if the machine cannot execute some
/// operation of `l`.
pub fn assign_sacks(
    l: &Loop,
    machine: &Machine,
    sched: &Schedule,
    lifetimes: &[Lifetime],
    config: SackConfig,
) -> Result<SackAssignment, MachineError> {
    let ii = sched.ii() as usize;
    let consumers = l.consumers();
    let n = lifetimes.len();

    // Port reservation tables: [sack][kernel cycle].
    let s = config.sacks as usize;
    let mut read_busy = vec![vec![false; ii]; s];
    let mut write_busy = vec![vec![false; ii]; s];
    let mut sack_of: Vec<Option<u32>> = vec![None; n];

    // Longest lifetimes first: they relieve the central file the most.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(lifetimes[i].len()));

    for &i in &order {
        let lt = &lifetimes[i];
        let cons = &consumers[lt.op.index()];
        if cons.len() != 1 {
            continue; // multi-use (or dead): central
        }
        let (consumer, _dist) = cons[0];
        let read_slot = sched.start(consumer) as usize % ii;
        let lat = machine.latency(l.op(lt.op).kind())? as usize;
        let write_slot = (sched.start(lt.op) as usize + lat) % ii;
        for sack in 0..s {
            if !read_busy[sack][read_slot] && !write_busy[sack][write_slot] {
                read_busy[sack][read_slot] = true;
                write_busy[sack][write_slot] = true;
                sack_of[i] = Some(sack as u32);
                break;
            }
        }
    }

    // Allocate the central file over the unsacked lifetimes, keeping the
    // offsets vector full-length for easy indexing.
    let central_lts: Vec<Lifetime> = (0..n)
        .filter(|&i| sack_of[i].is_none())
        .map(|i| lifetimes[i])
        .collect();
    let central_compact = allocate_unified(&central_lts, sched.ii());
    let mut central_offsets = vec![0u32; n];
    let mut k = 0;
    for i in 0..n {
        if sack_of[i].is_none() {
            central_offsets[i] = central_compact.offsets[k];
            k += 1;
        }
    }
    let central = UnifiedAlloc {
        regs: central_compact.regs,
        offsets: central_offsets,
    };

    // Allocate each sack independently.
    let sack_allocs: Vec<UnifiedAlloc> = (0..config.sacks)
        .map(|sack| {
            let lts: Vec<Lifetime> = (0..n)
                .filter(|&i| sack_of[i] == Some(sack))
                .map(|i| lifetimes[i])
                .collect();
            allocate_unified(&lts, sched.ii())
        })
        .collect();

    let sacked = sack_of.iter().filter(|s| s.is_some()).count();
    Ok(SackAssignment {
        sack_of,
        central,
        sack_allocs,
        sacked,
    })
}

/// Statistics of single-use values in a loop under a schedule (the §3.3
/// observation the sack and NCDRF organisations both exploit).
pub fn single_use_fraction(l: &Loop, lifetimes: &[Lifetime]) -> f64 {
    if lifetimes.is_empty() {
        return 0.0;
    }
    let consumers = l.consumers();
    let single = lifetimes
        .iter()
        .filter(|lt| consumers[lt.op.index()].len() == 1)
        .count();
    single as f64 / lifetimes.len() as f64
}

/// A reference to the consuming op of a value — helper for tests.
pub fn sole_consumer(l: &Loop, op: OpId) -> Option<OpId> {
    let cons = &l.consumers()[op.index()];
    match cons.as_slice() {
        [(c, _)] => Some(*c),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::lifetimes;
    use ncdrf_ddg::{LoopBuilder, Weight};
    use ncdrf_sched::modulo_schedule;

    fn chain() -> Loop {
        // L -> M -> A -> S : every intermediate value is single-use.
        let mut b = LoopBuilder::new("chain");
        let c = b.invariant("c", 2.0);
        let x = b.array_in("x");
        let z = b.array_out("z");
        let l = b.load("L", x, 0);
        let m = b.mul("M", l.now(), c);
        let a = b.add("A", m.now(), c);
        b.store("S", z, 0, a.now());
        b.finish(Weight::default()).unwrap()
    }

    fn fanout() -> Loop {
        // One load consumed by three ops: multi-use, must stay central.
        let mut b = LoopBuilder::new("fanout");
        let x = b.array_in("x");
        let z = b.array_out("z");
        let l = b.load("L", x, 0);
        let m = b.mul("M", l.now(), l.now());
        let a = b.add("A", m.now(), l.now());
        b.store("S", z, 0, a.now());
        b.finish(Weight::default()).unwrap()
    }

    #[test]
    fn single_use_values_get_sacked() {
        let l = chain();
        let machine = Machine::clustered(3, 1);
        let sched = modulo_schedule(&l, &machine).unwrap();
        let lts = lifetimes(&l, &machine, &sched).unwrap();
        let a = assign_sacks(&l, &machine, &sched, &lts, SackConfig { sacks: 4 }).unwrap();
        assert_eq!(a.sacked, lts.len(), "all chain values are single-use");
        assert_eq!(a.central_regs(), 0);
        assert!(a.sack_regs() > 0);
    }

    #[test]
    fn multi_use_values_stay_central() {
        let l = fanout();
        let machine = Machine::clustered(3, 1);
        let sched = modulo_schedule(&l, &machine).unwrap();
        let lts = lifetimes(&l, &machine, &sched).unwrap();
        let a = assign_sacks(&l, &machine, &sched, &lts, SackConfig::default()).unwrap();
        let li = lts.iter().position(|lt| l.op(lt.op).name() == "L").unwrap();
        assert_eq!(a.sack_of[li], None, "fanned-out value must be central");
        assert!(a.central_regs() > 0);
    }

    #[test]
    fn zero_sacks_degenerates_to_unified() {
        let l = chain();
        let machine = Machine::clustered(3, 1);
        let sched = modulo_schedule(&l, &machine).unwrap();
        let lts = lifetimes(&l, &machine, &sched).unwrap();
        let a = assign_sacks(&l, &machine, &sched, &lts, SackConfig { sacks: 0 }).unwrap();
        assert_eq!(a.sacked, 0);
        assert_eq!(a.central_regs(), allocate_unified(&lts, sched.ii()).regs);
    }

    #[test]
    fn port_conflicts_limit_sacking() {
        // With a single sack and II=1 every value reads at slot 0: only
        // one value can be sacked.
        let l = chain();
        let machine = Machine::clustered(3, 1);
        let sched = modulo_schedule(&l, &machine).unwrap();
        if sched.ii() == 1 {
            let lts = lifetimes(&l, &machine, &sched).unwrap();
            let a = assign_sacks(&l, &machine, &sched, &lts, SackConfig { sacks: 1 }).unwrap();
            assert!(a.sacked <= 1);
        }
    }

    #[test]
    fn single_use_fraction_is_high_for_fp_loops() {
        // The §3.3 claim: most register instances are read once.
        let machine = Machine::clustered(3, 1);
        let mut total = 0.0;
        let mut count = 0;
        for l in [chain(), fanout()] {
            let sched = modulo_schedule(&l, &machine).unwrap();
            let lts = lifetimes(&l, &machine, &sched).unwrap();
            total += single_use_fraction(&l, &lts);
            count += 1;
        }
        assert!(total / count as f64 > 0.5);
    }

    #[test]
    fn sacks_relieve_the_central_file() {
        let l = chain();
        let machine = Machine::clustered(6, 1);
        let sched = modulo_schedule(&l, &machine).unwrap();
        let lts = lifetimes(&l, &machine, &sched).unwrap();
        let unified = allocate_unified(&lts, sched.ii()).regs;
        let a = assign_sacks(&l, &machine, &sched, &lts, SackConfig { sacks: 4 }).unwrap();
        assert!(
            a.central_regs() < unified,
            "central {} should shrink below unified {}",
            a.central_regs(),
            unified
        );
    }

    #[test]
    fn sole_consumer_helper() {
        let l = chain();
        let ld = l.find_op("L").unwrap();
        let m = l.find_op("M").unwrap();
        assert_eq!(sole_consumer(&l, ld), Some(m));
        let l2 = fanout();
        let ld2 = l2.find_op("L").unwrap();
        assert_eq!(sole_consumer(&l2, ld2), None);
    }
}
