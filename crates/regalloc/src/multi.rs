//! Generalisation of the non-consistent register file to `k > 2`
//! clusters.
//!
//! The paper evaluates two clusters; its conclusion notes the technique
//! "could be applied to other scheduling techniques and to other parts of
//! the code" — and nothing in the model is two-specific: a value is
//! replicated into exactly the subfiles of the clusters that *read* it.
//! This module provides that general form: classification to
//! [`ClusterSet`]s, per-subfile pressures, and a First-Fit packing where
//! a value must be conflict-free in every subfile it occupies (all copies
//! share one rotating offset, as in the 2-cluster case).

use crate::lifetime::{max_live_subset, Lifetime};
use crate::offsets_conflict;
use ncdrf_ddg::Loop;
use ncdrf_machine::{ClusterId, Machine};
use ncdrf_sched::Schedule;
use serde::{Deserialize, Serialize};

/// The set of subfiles holding (replicating) one value, as a bitmask over
/// cluster indices. Supports up to 32 clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct ClusterSet(u32);

impl ClusterSet {
    /// The empty set.
    pub const EMPTY: ClusterSet = ClusterSet(0);

    /// A singleton set.
    pub fn only(c: ClusterId) -> Self {
        ClusterSet(1 << c.index().min(31))
    }

    /// Inserts a cluster.
    pub fn insert(&mut self, c: ClusterId) {
        self.0 |= 1 << c.index().min(31);
    }

    /// Whether the set contains `c`.
    pub fn contains(self, c: ClusterId) -> bool {
        self.0 & (1 << c.index().min(31)) != 0
    }

    /// Number of subfiles holding the value (its replication degree).
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether the two sets share a subfile (i.e. the values can
    /// interfere).
    pub fn intersects(self, other: ClusterSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Iterator over the member clusters.
    pub fn iter(self) -> impl Iterator<Item = ClusterId> {
        (0..32)
            .filter(move |i| self.0 & (1 << i) != 0)
            .map(ClusterId)
    }
}

/// Classifies every lifetime by the set of clusters consuming it — the
/// k-cluster generalisation of [`classify`](crate::classify). Values with
/// no consumer (impossible for validated loops) default to cluster 0.
pub fn classify_multi(
    l: &Loop,
    machine: &Machine,
    sched: &Schedule,
    lifetimes: &[Lifetime],
) -> Vec<ClusterSet> {
    let consumers = l.consumers();
    lifetimes
        .iter()
        .map(|lt| {
            let mut set = ClusterSet::EMPTY;
            for &(c, _) in &consumers[lt.op.index()] {
                set.insert(sched.cluster(c, machine));
            }
            if set.is_empty() {
                set.insert(ClusterId(0));
            }
            set
        })
        .collect()
}

/// Per-subfile MaxLive pressures of a k-cluster classification.
pub fn multi_pressure(
    lifetimes: &[Lifetime],
    sets: &[ClusterSet],
    ii: u32,
    clusters: u32,
) -> Vec<u32> {
    (0..clusters)
        .map(|c| {
            let kept: Vec<Lifetime> = lifetimes
                .iter()
                .zip(sets)
                .filter(|(_, s)| s.contains(ClusterId(c)))
                .map(|(lt, _)| *lt)
                .collect();
            max_live_subset(&kept, ii, |_| true)
        })
        .collect()
}

/// Result of a k-cluster non-consistent allocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiAlloc {
    /// Registers per subfile (the requirement is the maximum subfile).
    pub regs: u32,
    /// Rotating offset of each lifetime (shared by all its copies).
    pub offsets: Vec<u32>,
    /// Subfile set of each lifetime.
    pub sets: Vec<ClusterSet>,
    /// Per-subfile MaxLive pressures.
    pub pressure: Vec<u32>,
}

/// First-Fit packing on a k-cluster non-consistent file: two values
/// interfere iff their cluster sets intersect; every copy of a value uses
/// the same rotating offset in each subfile that holds it.
///
/// # Panics
///
/// Panics if slice lengths differ or `ii == 0`.
pub fn allocate_multi(
    lifetimes: &[Lifetime],
    sets: &[ClusterSet],
    ii: u32,
    clusters: u32,
) -> MultiAlloc {
    assert!(ii > 0, "II must be positive");
    assert_eq!(lifetimes.len(), sets.len());
    let n = lifetimes.len();
    let pressure = multi_pressure(lifetimes, sets, ii, clusters);
    if n == 0 || lifetimes.iter().all(Lifetime::is_empty) {
        return MultiAlloc {
            regs: 0,
            offsets: vec![0; n],
            sets: sets.to_vec(),
            pressure,
        };
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (lifetimes[i].start, i));

    let mut r = pressure.iter().copied().max().unwrap_or(0).max(1);
    'grow: loop {
        let mut offsets: Vec<Option<u32>> = vec![None; n];
        for &v in &order {
            if lifetimes[v].is_empty() {
                offsets[v] = Some(0);
                continue;
            }
            let mut placed = false;
            'offsets: for cand in 0..r {
                for (u, off_u) in offsets.iter().enumerate() {
                    let Some(off_u) = off_u else { continue };
                    if lifetimes[u].is_empty() || !sets[u].intersects(sets[v]) {
                        continue;
                    }
                    if offsets_conflict(
                        &lifetimes[v],
                        &lifetimes[u],
                        ii,
                        cand as i64,
                        *off_u as i64,
                        r as i64,
                    ) {
                        continue 'offsets;
                    }
                }
                offsets[v] = Some(cand);
                placed = true;
                break;
            }
            if !placed {
                r += 1;
                continue 'grow;
            }
        }
        return MultiAlloc {
            regs: r,
            offsets: offsets.into_iter().map(|o| o.unwrap()).collect(),
            sets: sets.to_vec(),
            pressure,
        };
    }
}

/// Independently re-checks a k-cluster allocation.
pub fn verify_multi(
    lifetimes: &[Lifetime],
    ii: u32,
    alloc: &MultiAlloc,
) -> Result<(), (usize, usize)> {
    if alloc.regs == 0 {
        return Ok(());
    }
    for a in 0..lifetimes.len() {
        for b in (a + 1)..lifetimes.len() {
            if !alloc.sets[a].intersects(alloc.sets[b]) {
                continue;
            }
            if offsets_conflict(
                &lifetimes[a],
                &lifetimes[b],
                ii,
                alloc.offsets[a] as i64,
                alloc.offsets[b] as i64,
                alloc.regs as i64,
            ) {
                return Err((a, b));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual::{allocate_dual, classify};
    use crate::lifetime::lifetimes;
    use ncdrf_ddg::{LoopBuilder, OpId, Weight};
    use ncdrf_sched::modulo_schedule;

    fn lt(i: usize, start: u32, end: u32) -> Lifetime {
        Lifetime {
            op: OpId::from_index(i),
            start,
            end,
        }
    }

    #[test]
    fn cluster_set_basics() {
        let mut s = ClusterSet::EMPTY;
        assert!(s.is_empty());
        s.insert(ClusterId(0));
        s.insert(ClusterId(3));
        assert!(s.contains(ClusterId(0)));
        assert!(!s.contains(ClusterId(1)));
        assert_eq!(s.count(), 2);
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![ClusterId(0), ClusterId(3)]
        );
        assert!(s.intersects(ClusterSet::only(ClusterId(3))));
        assert!(!s.intersects(ClusterSet::only(ClusterId(1))));
    }

    #[test]
    fn disjoint_clusters_share_offsets() {
        // Four overlapping values, each local to a different cluster of a
        // 4-cluster machine: one register per subfile suffices.
        let lts = [lt(0, 0, 4), lt(1, 0, 4), lt(2, 0, 4), lt(3, 0, 4)];
        let sets = [
            ClusterSet::only(ClusterId(0)),
            ClusterSet::only(ClusterId(1)),
            ClusterSet::only(ClusterId(2)),
            ClusterSet::only(ClusterId(3)),
        ];
        let a = allocate_multi(&lts, &sets, 4, 4);
        assert_eq!(a.regs, 1);
        assert!(verify_multi(&lts, 4, &a).is_ok());
        assert_eq!(a.pressure, vec![1, 1, 1, 1]);
    }

    #[test]
    fn fully_replicated_degenerates_to_unified() {
        let lts = [lt(0, 0, 5), lt(1, 2, 9), lt(2, 4, 6)];
        let mut all = ClusterSet::EMPTY;
        for c in 0..4 {
            all.insert(ClusterId(c));
        }
        let sets = [all; 3];
        let multi = allocate_multi(&lts, &sets, 2, 4);
        let uni = crate::alloc::allocate_unified(&lts, 2);
        assert_eq!(multi.regs, uni.regs);
    }

    #[test]
    fn two_cluster_multi_matches_dual() {
        // On a 2-cluster machine the generalisation must agree with the
        // paper's dual allocator for every corpus-style loop shape.
        let mut b = LoopBuilder::new("t");
        let x = b.array_in("x");
        let y = b.array_in("y");
        let z = b.array_out("z");
        let lx = b.load("LX", x, 0);
        let ly = b.load("LY", y, 0);
        let m = b.mul("M", lx.now(), ly.now());
        let a = b.add("A", m.now(), lx.now());
        let s = b.reserve_add("S");
        b.bind(s, [a.now(), s.prev(1)]);
        b.store("ST", z, 0, s.now());
        let l = b.finish(Weight::default()).unwrap();

        let machine = ncdrf_machine::Machine::clustered(3, 1);
        let sched = modulo_schedule(&l, &machine).unwrap();
        let lts = lifetimes(&l, &machine, &sched).unwrap();

        let dual = allocate_dual(&lts, &classify(&l, &machine, &sched, &lts), sched.ii());
        let multi = allocate_multi(
            &lts,
            &classify_multi(&l, &machine, &sched, &lts),
            sched.ii(),
            2,
        );
        assert_eq!(dual.regs, multi.regs);
        assert!(verify_multi(&lts, sched.ii(), &multi).is_ok());
    }

    #[test]
    fn more_clusters_never_increase_the_requirement_bound() {
        // Splitting consumers over more subfiles can only shrink each
        // subfile's pressure (with the same schedule/assignment).
        let lts = [lt(0, 0, 8), lt(1, 1, 9), lt(2, 2, 10), lt(3, 3, 11)];
        let two = [
            ClusterSet::only(ClusterId(0)),
            ClusterSet::only(ClusterId(0)),
            ClusterSet::only(ClusterId(1)),
            ClusterSet::only(ClusterId(1)),
        ];
        let four = [
            ClusterSet::only(ClusterId(0)),
            ClusterSet::only(ClusterId(1)),
            ClusterSet::only(ClusterId(2)),
            ClusterSet::only(ClusterId(3)),
        ];
        let p2 = multi_pressure(&lts, &two, 2, 2);
        let p4 = multi_pressure(&lts, &four, 2, 4);
        assert!(p4.iter().max() <= p2.iter().max());
    }

    #[test]
    fn empty_input() {
        let a = allocate_multi(&[], &[], 3, 4);
        assert_eq!(a.regs, 0);
        assert!(verify_multi(&[], 3, &a).is_ok());
    }
}
