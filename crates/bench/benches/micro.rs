//! Micro-benchmarks of the individual passes: modulo scheduling, unified
//! and dual allocation, the swapping pass, the spiller, and the VLIW
//! executor.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ncdrf::machine::Machine;
use ncdrf::regalloc::{allocate_dual, allocate_unified, classify, lifetimes};
use ncdrf::sched::modulo_schedule;
use ncdrf::spill::{requirement_unified, spill_until_fits, SpillOptions};
use ncdrf::swap::swap_pass;
use ncdrf::vliw::{execute, Binding};
use ncdrf_bench::micro_kernels;

fn bench(c: &mut Criterion) {
    let machine = Machine::clustered(3, 1);
    let kernels = micro_kernels();

    c.bench_function("sched/modulo_schedule_7_kernels", |b| {
        b.iter(|| {
            for l in &kernels {
                modulo_schedule(l, &machine).unwrap();
            }
        })
    });

    let prepared: Vec<_> = kernels
        .iter()
        .map(|l| {
            let s = modulo_schedule(l, &machine).unwrap();
            let lts = lifetimes(l, &machine, &s).unwrap();
            (l, s, lts)
        })
        .collect();

    c.bench_function("regalloc/unified_7_kernels", |b| {
        b.iter(|| {
            for (_, s, lts) in &prepared {
                allocate_unified(lts, s.ii());
            }
        })
    });

    c.bench_function("regalloc/dual_7_kernels", |b| {
        b.iter(|| {
            for (l, s, lts) in &prepared {
                let classes = classify(l, &machine, s, lts);
                allocate_dual(lts, &classes, s.ii());
            }
        })
    });

    c.bench_function("swap/greedy_pass_7_kernels", |b| {
        b.iter_batched(
            || {
                prepared
                    .iter()
                    .map(|(l, s, _)| ((*l).clone(), s.clone()))
                    .collect::<Vec<_>>()
            },
            |mut work| {
                for (l, s) in &mut work {
                    swap_pass(l, &machine, s).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });

    let pressured = ncdrf::corpus::kernels::recurrences::chain8();
    let m6 = Machine::clustered(6, 1);
    c.bench_function("spill/chain8_to_6_regs", |b| {
        b.iter(|| {
            spill_until_fits(
                &pressured,
                &m6,
                6,
                &mut requirement_unified,
                SpillOptions::default(),
            )
            .unwrap()
        })
    });

    let (l, s, lts) = &prepared[0];
    let alloc = allocate_unified(lts, s.ii());
    c.bench_function("vliw/execute_daxpy_100_iters", |b| {
        b.iter(|| execute(l, &machine, s, &Binding::unified(lts, &alloc), 100).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
