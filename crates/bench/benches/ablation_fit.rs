//! Ablation: First-Fit vs Best-Fit packing on the rotating register file.
//! The paper selects First-Fit "due to its simplicity" after Rau et al.
//! found the disciplines near-equivalent; this bench re-checks both the
//! quality (total registers over a corpus slice) and the cost.

use criterion::{criterion_group, criterion_main, Criterion};
use ncdrf::machine::Machine;
use ncdrf::regalloc::{allocate_unified_with, lifetimes, FitPolicy};
use ncdrf::sched::modulo_schedule;
use ncdrf_bench::bench_corpus;

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus(30);
    let machine = Machine::clustered(6, 1);

    let prepared: Vec<_> = corpus
        .iter()
        .map(|l| {
            let s = modulo_schedule(l, &machine).unwrap();
            let lts = lifetimes(l, &machine, &s).unwrap();
            (s.ii(), lts)
        })
        .collect();

    for (name, fit) in [
        ("first_fit", FitPolicy::FirstFit),
        ("best_fit", FitPolicy::BestFit),
    ] {
        let total: u64 = prepared
            .iter()
            .map(|(ii, lts)| allocate_unified_with(lts, *ii, fit).regs as u64)
            .sum();
        println!(
            "{name}: total registers over {} loops = {total}",
            prepared.len()
        );
    }

    for (name, fit) in [
        ("first_fit", FitPolicy::FirstFit),
        ("best_fit", FitPolicy::BestFit),
    ] {
        c.bench_function(&format!("ablation_fit/{name}"), |b| {
            b.iter(|| {
                for (ii, lts) in &prepared {
                    allocate_unified_with(lts, *ii, fit);
                }
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
