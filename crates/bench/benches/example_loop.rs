//! Regenerates Tables 2-4 (the §4 worked example: lifetimes,
//! classification, swapping) and benchmarks the single-loop pipeline that
//! produces them.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ncdrf::ddg::{Loop, LoopBuilder, Weight};
use ncdrf::machine::Machine;
use ncdrf::regalloc::{allocate_dual, allocate_unified, classify, lifetimes, DualPressure};
use ncdrf::sched::modulo_schedule;
use ncdrf::swap::swap_pass;

fn fig2() -> Loop {
    let mut b = LoopBuilder::new("fig2");
    let r = b.invariant("r", 0.5);
    let t = b.invariant("t", 1.5);
    let x = b.array_in("x");
    let y = b.array_in("y");
    let z = b.array_out("z");
    let l1 = b.load("L1", x, 0);
    let l2 = b.load("L2", y, 0);
    let m3 = b.mul("M3", l1.now(), r);
    let a4 = b.add("A4", m3.now(), l2.now());
    let m5 = b.mul("M5", a4.now(), t);
    let a6 = b.add("A6", m5.now(), l1.now());
    b.store("S7", z, 0, a6.now());
    b.finish(Weight::new(100, 1)).unwrap()
}

fn bench(c: &mut Criterion) {
    let l = fig2();
    let machine = Machine::clustered(3, 2);

    // Regenerate the tables once so the bench run doubles as the
    // experiment.
    let mut sched = modulo_schedule(&l, &machine).unwrap();
    let lts = lifetimes(&l, &machine, &sched).unwrap();
    let total: u32 = lts.iter().map(|lt| lt.len()).sum();
    let classes = classify(&l, &machine, &sched, &lts);
    let p = DualPressure::new(&lts, &classes, sched.ii());
    println!(
        "\nTable 2: sum of lifetimes {} -> unified {}",
        total,
        allocate_unified(&lts, sched.ii()).regs
    );
    println!(
        "Table 3: GL {} LO {} RO {} -> dual {}",
        p.global,
        p.left,
        p.right,
        allocate_dual(&lts, &classes, sched.ii()).regs
    );
    let out = swap_pass(&l, &machine, &mut sched).unwrap();
    println!("Table 4: after swapping -> {}\n", out.after);

    c.bench_function("example_loop/schedule", |b| {
        b.iter(|| modulo_schedule(&l, &machine).unwrap())
    });

    c.bench_function("example_loop/tables_2_3", |b| {
        let sched = modulo_schedule(&l, &machine).unwrap();
        b.iter(|| {
            let lts = lifetimes(&l, &machine, &sched).unwrap();
            let classes = classify(&l, &machine, &sched, &lts);
            (
                allocate_unified(&lts, sched.ii()).regs,
                allocate_dual(&lts, &classes, sched.ii()).regs,
            )
        })
    });

    c.bench_function("example_loop/table_4_swap", |b| {
        b.iter_batched(
            || modulo_schedule(&l, &machine).unwrap(),
            |mut sched| swap_pass(&l, &machine, &mut sched).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
