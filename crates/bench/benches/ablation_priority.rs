//! Ablation: the IMS operation-selection priority — Rau's height-based
//! priorities vs plain program order. Prints how many loops each variant
//! schedules at the MII and the total II achieved, then benchmarks both.

use criterion::{criterion_group, criterion_main, Criterion};
use ncdrf::machine::Machine;
use ncdrf::sched::{mii, modulo_schedule_with, Priority, SchedulerOptions};
use ncdrf_bench::bench_corpus;

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus(40);
    let machine = Machine::clustered(6, 1);

    for (name, priority) in [
        ("height", Priority::Height),
        ("input_order", Priority::InputOrder),
    ] {
        let opts = SchedulerOptions {
            priority,
            ..SchedulerOptions::default()
        };
        let mut total_ii = 0u64;
        let mut at_mii = 0usize;
        for l in corpus.iter() {
            let bound = mii(l, &machine).unwrap().mii;
            let s = modulo_schedule_with(l, &machine, opts).unwrap();
            total_ii += s.ii() as u64;
            at_mii += usize::from(s.ii() == bound);
        }
        println!(
            "{name}: total II {total_ii}, {at_mii}/{} loops scheduled at the MII",
            corpus.len()
        );
    }

    for (name, priority) in [
        ("height", Priority::Height),
        ("input_order", Priority::InputOrder),
    ] {
        let opts = SchedulerOptions {
            priority,
            ..SchedulerOptions::default()
        };
        c.bench_function(&format!("ablation_priority/{name}"), |b| {
            b.iter(|| {
                for l in corpus.iter() {
                    modulo_schedule_with(l, &machine, opts).unwrap();
                }
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
