//! Benchmark guard for the execution subsystem: the multi-machine
//! Figure 8/9 grid run three ways —
//!
//! 1. `seq` — [`Sweep::run_sequential`], strictly one task at a time;
//! 2. `pr1` — the pre-executor strategy: machines sequential, each
//!    corpus call fanned out and joined on its own (the barrier-per-call
//!    shape of the old `par_map`-based `Sweep::run`), reconstructed here
//!    from the `Session` corpus methods;
//! 3. `pool` — [`Sweep::run`] on the work-stealing `(machine, loop)`
//!    grid, machine- and loop-level parallelism composed.
//!
//! The correctness assert is the headline: the pooled grid must be
//! **bit-identical** (order-stable, field-for-field) to the sequential
//! reference. The printed speedups are hardware-dependent: on a
//! multi-core host the pooled grid should comfortably exceed 2x over the
//! machine-sequential paths; on a single hardware thread (as in some CI
//! sandboxes) all three columns converge — by design, since worker count
//! must never change results.

use criterion::{criterion_group, criterion_main, Criterion};
use ncdrf::corpus::Corpus;
use ncdrf::machine::Machine;
use ncdrf::{LoopEval, Model, Session, Sweep, SweepReport};
use ncdrf_bench::bench_corpus;
use std::time::Instant;

/// The full multi-machine Figure 8/9 grid: 2 latencies × 2 budgets × 4
/// models.
const LATENCIES: [u32; 2] = [3, 6];
const BUDGETS: [u32; 2] = [32, 64];

fn grid<'c>(corpus: &'c Corpus) -> Sweep<'c> {
    Sweep::new(corpus)
        .clustered_latencies(LATENCIES)
        .models(Model::all())
        .budgets(BUDGETS)
}

/// PR 1's execution strategy: machines strictly sequential, one
/// fan-out/join per corpus call.
fn pr1_style(corpus: &Corpus) -> u128 {
    let mut total = 0u128;
    for lat in LATENCIES {
        let session = Session::new(Machine::clustered(lat, 1));
        for budget in BUDGETS {
            for model in Model::all() {
                total += session
                    .evaluate_corpus(corpus, model, budget)
                    .unwrap()
                    .iter()
                    .map(LoopEval::cycles)
                    .sum::<u128>();
            }
        }
    }
    total
}

fn checksum(r: &SweepReport) -> u128 {
    r.outcomes.iter().map(|o| o.cycles).sum()
}

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus(24);
    let sweep = grid(&corpus);

    // Correctness guard (the acceptance criterion): the work-stealing
    // grid is bit-identical to the sequential reference — same curves,
    // same outcomes, same order, same cache counters.
    let pooled = sweep.run().expect("bench corpus always schedules");
    let sequential = sweep
        .run_sequential()
        .expect("bench corpus always schedules");
    assert_eq!(
        pooled, sequential,
        "pooled sweep must be bit-identical to the sequential reference"
    );
    assert_eq!(checksum(&pooled), pr1_style(&corpus), "strategies disagree");

    // Headline wall-clock comparison, printed so a bench run doubles as
    // the demonstration.
    let reps = 5u32;
    let t = Instant::now();
    for _ in 0..reps {
        sweep.run_sequential().unwrap();
    }
    let seq = t.elapsed();
    let t = Instant::now();
    for _ in 0..reps {
        pr1_style(&corpus);
    }
    let pr1 = t.elapsed();
    let t = Instant::now();
    for _ in 0..reps {
        sweep.run().unwrap();
    }
    let pool = t.elapsed();
    println!(
        "\nsweep_parallel: fig8/9 grid ({} loops x {} machines) \
         seq {:.1?} | pr1-style {:.1?} | pool {:.1?} -> {:.2}x vs seq, {:.2}x vs pr1 \
         ({} workers)\n",
        corpus.len(),
        LATENCIES.len(),
        seq / reps,
        pr1 / reps,
        pool / reps,
        seq.as_secs_f64() / pool.as_secs_f64().max(1e-12),
        pr1.as_secs_f64() / pool.as_secs_f64().max(1e-12),
        ncdrf::exec::Pool::new().workers(),
    );

    c.bench_function("sweep_parallel/sequential", |b| {
        b.iter(|| sweep.run_sequential().unwrap())
    });
    c.bench_function("sweep_parallel/pr1_style", |b| {
        b.iter(|| pr1_style(&corpus))
    });
    c.bench_function("sweep_parallel/pool", |b| b.iter(|| sweep.run().unwrap()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
