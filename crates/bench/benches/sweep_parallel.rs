//! Benchmark guard for the execution subsystem: the multi-machine
//! Figure 8/9 grid run three ways —
//!
//! 1. `seq` — [`Sweep::run_sequential`], strictly one task at a time;
//! 2. `pr1` — the pre-executor strategy: machines sequential, each
//!    corpus call fanned out and joined on its own (the barrier-per-call
//!    shape of the old `par_map`-based `Sweep::run`), reconstructed here
//!    from the `Session` corpus methods;
//! 3. `pool` — [`Sweep::run`] on the work-stealing `(machine, loop)`
//!    grid, machine- and loop-level parallelism composed.
//!
//! The correctness assert is the headline: the pooled grid must be
//! **bit-identical** (order-stable, field-for-field) to the sequential
//! reference. The printed speedups are hardware-dependent: on a
//! multi-core host the pooled grid should comfortably exceed 2x over the
//! machine-sequential paths; on a single hardware thread (as in some CI
//! sandboxes) all three columns converge — by design, since worker count
//! must never change results.

// Benchmarks measure wall time by definition.
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, criterion_main, Criterion};
use ncdrf::corpus::Corpus;
use ncdrf::exec::Pool;
use ncdrf::machine::Machine;
use ncdrf::{LoopEval, Session, Sweep, SweepReport, PAPER_MODELS};
use ncdrf_bench::bench_corpus;
use std::sync::Arc;
use std::time::Instant;

/// The full multi-machine Figure 8/9 grid: 2 latencies × 2 budgets × 4
/// models.
const LATENCIES: [u32; 2] = [3, 6];
const BUDGETS: [u32; 2] = [32, 64];

/// The descending budget ladder of the trajectory-continuation guard:
/// each rung below 64 is a strict continuation of the rung above it.
const LADDER: [u32; 4] = [64, 48, 32, 16];

fn grid<'c>(corpus: &'c Corpus) -> Sweep<'c> {
    Sweep::new(corpus)
        .clustered_latencies(LATENCIES)
        .models(PAPER_MODELS)
        .budgets(BUDGETS)
}

/// PR 1's execution strategy: machines strictly sequential, one
/// fan-out/join per corpus call.
fn pr1_style(corpus: &Corpus) -> u128 {
    let mut total = 0u128;
    for lat in LATENCIES {
        let session = Session::new(Machine::clustered(lat, 1));
        for budget in BUDGETS {
            for model in PAPER_MODELS {
                total += session
                    .evaluate_corpus(corpus, model, budget)
                    .unwrap()
                    .iter()
                    .map(LoopEval::cycles)
                    .sum::<u128>();
            }
        }
    }
    total
}

fn checksum(r: &SweepReport) -> u128 {
    r.outcomes.iter().map(|o| o.cycles).sum()
}

/// The trajectory-continuation guard: the 64→48→32→16 ladder in ONE
/// sweep (per-`(loop, model)` spill trajectories resumed across budgets)
/// versus one sweep per budget (every budget respills from zero). The
/// assertion is on the **spill-step counters**, not wall clock: the
/// ladder must compute strictly fewer steps, while staying bit-identical
/// per budget cell (the `trajectory_identity` suite pins that part).
fn ladder_guard(corpus: &Corpus, pool: &Arc<Pool>) {
    let ladder = Sweep::new(corpus)
        .clustered_latencies(LATENCIES)
        .models(PAPER_MODELS)
        .budgets(LADDER)
        .pool(Arc::clone(pool));
    let t = Instant::now();
    let continued = ladder.run().expect("bench corpus always schedules");
    let ladder_time = t.elapsed();

    let t = Instant::now();
    let from_scratch: u64 = LADDER
        .iter()
        .map(|&b| {
            Sweep::new(corpus)
                .clustered_latencies(LATENCIES)
                .models(PAPER_MODELS)
                .budget(b)
                .pool(Arc::clone(pool))
                .run()
                .expect("bench corpus always schedules")
                .scheduling
                .spill_steps
        })
        .sum();
    let scratch_time = t.elapsed();

    let s = continued.scheduling;
    assert!(
        s.traj_hits + s.traj_resumes > 0,
        "the ladder must exercise trajectory continuation"
    );
    assert!(
        s.spill_steps < from_scratch,
        "continuation must compute fewer spill steps: {} vs {}",
        s.spill_steps,
        from_scratch
    );
    println!(
        "\nsweep_parallel: budget ladder {LADDER:?} — {} spill steps \
         ({} trajectory hits, {} resumes) vs {} from scratch \
         ({:.1}% saved); wall {:.1?} vs {:.1?}\n",
        s.spill_steps,
        s.traj_hits,
        s.traj_resumes,
        from_scratch,
        100.0 * (from_scratch - s.spill_steps) as f64 / (from_scratch.max(1)) as f64,
        ladder_time,
        scratch_time,
    );
}

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus(24);
    // One persistent pool for every pooled run in this bench: the
    // workers spawn once and are reused across all sweeps and reps.
    let pool = Arc::new(Pool::new());
    let sweep = grid(&corpus).pool(Arc::clone(&pool));

    ladder_guard(&corpus, &pool);

    // Correctness guard (the acceptance criterion): the work-stealing
    // grid is bit-identical to the sequential reference — same curves,
    // same outcomes, same order, same cache counters.
    let pooled = sweep.run().expect("bench corpus always schedules");
    let sequential = sweep
        .run_sequential()
        .expect("bench corpus always schedules");
    assert_eq!(
        pooled, sequential,
        "pooled sweep must be bit-identical to the sequential reference"
    );
    assert_eq!(checksum(&pooled), pr1_style(&corpus), "strategies disagree");

    // Headline wall-clock comparison, printed so a bench run doubles as
    // the demonstration.
    let reps = 5u32;
    let t = Instant::now();
    for _ in 0..reps {
        sweep.run_sequential().unwrap();
    }
    let seq = t.elapsed();
    let t = Instant::now();
    for _ in 0..reps {
        pr1_style(&corpus);
    }
    let pr1 = t.elapsed();
    let t = Instant::now();
    for _ in 0..reps {
        sweep.run().unwrap();
    }
    let pool = t.elapsed();
    println!(
        "\nsweep_parallel: fig8/9 grid ({} loops x {} machines) \
         seq {:.1?} | pr1-style {:.1?} | pool {:.1?} -> {:.2}x vs seq, {:.2}x vs pr1 \
         ({} workers)\n",
        corpus.len(),
        LATENCIES.len(),
        seq / reps,
        pr1 / reps,
        pool / reps,
        seq.as_secs_f64() / pool.as_secs_f64().max(1e-12),
        pr1.as_secs_f64() / pool.as_secs_f64().max(1e-12),
        ncdrf::exec::Pool::new().workers(),
    );

    c.bench_function("sweep_parallel/sequential", |b| {
        b.iter(|| sweep.run_sequential().unwrap())
    });
    c.bench_function("sweep_parallel/pr1_style", |b| {
        b.iter(|| pr1_style(&corpus))
    });
    c.bench_function("sweep_parallel/pool", |b| b.iter(|| sweep.run().unwrap()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
