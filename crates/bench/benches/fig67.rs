//! Regenerates Figures 6 and 7 (static and dynamic cumulative register
//! distributions) and benchmarks the sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use ncdrf::{DistributionPanel, Render, ReportFormat, Sweep, PAPER_FINITE_MODELS};
use ncdrf_bench::bench_corpus;

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus(20);
    let points = [8u32, 16, 32, 64, 128];

    for lat in [3u32, 6] {
        let report = Sweep::new(&corpus)
            .clustered_latencies([lat])
            .models(PAPER_FINITE_MODELS)
            .points(points)
            .run()
            .unwrap();
        println!("\nFigure 6 (static), latency {lat}:");
        println!(
            "{}",
            DistributionPanel {
                curves: &report.distributions,
                dynamic: false
            }
            .render(ReportFormat::Text)
        );
        println!("Figure 7 (dynamic), latency {lat}:");
        println!(
            "{}",
            DistributionPanel {
                curves: &report.distributions,
                dynamic: true
            }
            .render(ReportFormat::Text)
        );
    }

    for lat in [3u32, 6] {
        c.bench_function(&format!("fig67/three_models_lat{lat}"), |b| {
            b.iter(|| {
                Sweep::new(&corpus)
                    .clustered_latencies([lat])
                    .models(PAPER_FINITE_MODELS)
                    .points(points)
                    .run()
                    .unwrap()
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
