//! Regenerates Figures 6 and 7 (static and dynamic cumulative register
//! distributions) and benchmarks the sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use ncdrf::{figures_6_7, render_distribution, PipelineOptions};
use ncdrf_bench::bench_corpus;

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus(20);
    let opts = PipelineOptions::default();
    let points = [8, 16, 32, 64, 128];

    for lat in [3u32, 6] {
        let curves = figures_6_7(&corpus, lat, &points, &opts).unwrap();
        println!("\nFigure 6 (static), latency {lat}:");
        println!("{}", render_distribution(&curves, false));
        println!("Figure 7 (dynamic), latency {lat}:");
        println!("{}", render_distribution(&curves, true));
    }

    c.bench_function("fig67/three_models_lat3", |b| {
        b.iter(|| figures_6_7(&corpus, 3, &points, &opts).unwrap())
    });
    c.bench_function("fig67/three_models_lat6", |b| {
        b.iter(|| figures_6_7(&corpus, 6, &points, &opts).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
