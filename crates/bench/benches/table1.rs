//! Regenerates Table 1 (allocatable-loop percentages on PxLy machines) as
//! a benchmark: run `cargo bench --bench table1` and read the printed
//! rows; Criterion tracks the cost of the full sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use ncdrf::{ModelId, Render, ReportFormat, Sweep, TABLE1_POINTS};
use ncdrf_bench::bench_corpus;

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus(20);

    // Print the regenerated table once, so the bench run doubles as the
    // experiment.
    let rows = Sweep::new(&corpus)
        .pxly_configs([(1, 3), (2, 3), (1, 6), (2, 6)])
        .models([ModelId::UNIFIED])
        .points(TABLE1_POINTS)
        .run()
        .unwrap()
        .table1();
    println!("\n{}", rows.render(ReportFormat::Text));

    c.bench_function("table1/sweep_4_configs", |b| {
        b.iter(|| {
            Sweep::new(&corpus)
                .pxly_configs([(1, 3), (2, 6)])
                .models([ModelId::UNIFIED])
                .points(TABLE1_POINTS)
                .run()
                .unwrap()
                .table1()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
