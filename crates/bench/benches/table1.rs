//! Regenerates Table 1 (allocatable-loop percentages on PxLy machines) as
//! a benchmark: run `cargo bench --bench table1` and read the printed
//! rows; Criterion tracks the cost of the full sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use ncdrf::{render_table1, table1, PipelineOptions};
use ncdrf_bench::bench_corpus;

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus(20);
    let opts = PipelineOptions::default();

    // Print the regenerated table once, so the bench run doubles as the
    // experiment.
    let rows = table1(&corpus, &[(1, 3), (2, 3), (1, 6), (2, 6)], &opts).unwrap();
    println!("\n{}", render_table1(&rows));

    c.bench_function("table1/sweep_4_configs", |b| {
        b.iter(|| table1(&corpus, &[(1, 3), (2, 6)], &opts).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
