//! Ablation: the swapping pass's candidate scoring — the paper's cheap
//! MaxLive lower bound versus exact re-allocation per candidate. Prints
//! the achieved requirements side by side and benchmarks both.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ncdrf::machine::Machine;
use ncdrf::sched::modulo_schedule;
use ncdrf::swap::{swap_pass_with, Scoring, SwapOptions};
use ncdrf_bench::bench_corpus;

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus(25);
    let machine = Machine::clustered(6, 1);

    // Quality comparison: total post-swap requirement under each scoring.
    for scoring in [Scoring::MaxLiveBound, Scoring::ExactAlloc] {
        let mut total = 0u64;
        for l in corpus.iter() {
            let mut s = modulo_schedule(l, &machine).unwrap();
            let out = swap_pass_with(
                l,
                &machine,
                &mut s,
                SwapOptions {
                    scoring,
                    ..SwapOptions::default()
                },
            )
            .unwrap();
            total += out.after as u64;
        }
        println!("{scoring:?}: total post-swap requirement bound = {total}");
    }

    for (name, scoring) in [
        ("maxlive_bound", Scoring::MaxLiveBound),
        ("exact_alloc", Scoring::ExactAlloc),
    ] {
        c.bench_function(&format!("ablation_swap_scoring/{name}"), |b| {
            b.iter_batched(
                || {
                    corpus
                        .iter()
                        .map(|l| (l.clone(), modulo_schedule(l, &machine).unwrap()))
                        .collect::<Vec<_>>()
                },
                |mut work| {
                    for (l, s) in &mut work {
                        swap_pass_with(
                            l,
                            &machine,
                            s,
                            SwapOptions {
                                scoring,
                                ..SwapOptions::default()
                            },
                        )
                        .unwrap();
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
