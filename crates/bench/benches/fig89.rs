//! Regenerates Figures 8 and 9 (performance and traffic density under
//! finite register files, spiller active) and benchmarks the sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use ncdrf::{Render, ReportFormat, Sweep, PAPER_MODELS};
use ncdrf_bench::bench_corpus;

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus(15);

    for (lat, regs) in [(3u32, 32u32), (6, 32), (3, 64), (6, 64)] {
        let report = Sweep::new(&corpus)
            .clustered_latencies([lat])
            .models(PAPER_MODELS)
            .budget(regs)
            .run()
            .unwrap();
        println!("\n--- L={lat} R={regs} ---");
        println!("{}", report.outcomes.render(ReportFormat::Text));
    }

    c.bench_function("fig89/four_models_L6_R32", |b| {
        b.iter(|| {
            Sweep::new(&corpus)
                .clustered_latencies([6])
                .models(PAPER_MODELS)
                .budget(32)
                .run()
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
