//! Regenerates Figures 8 and 9 (performance and traffic density under
//! finite register files, spiller active) and benchmarks the sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use ncdrf::{figures_8_9, render_budget_outcomes, BudgetMetric, PipelineOptions};
use ncdrf_bench::bench_corpus;

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus(15);
    let opts = PipelineOptions::default();

    for (lat, regs) in [(3u32, 32u32), (6, 32), (3, 64), (6, 64)] {
        let outcomes = figures_8_9(&corpus, lat, regs, &opts).unwrap();
        println!("\n--- L={lat} R={regs} ---");
        println!(
            "{}",
            render_budget_outcomes(&outcomes, BudgetMetric::Performance)
        );
        println!(
            "{}",
            render_budget_outcomes(&outcomes, BudgetMetric::TrafficDensity)
        );
    }

    c.bench_function("fig89/four_models_L6_R32", |b| {
        b.iter(|| figures_8_9(&corpus, 6, 32, &opts).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
