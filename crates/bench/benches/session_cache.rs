//! Benchmark guard for the `Session` schedule cache: a `figures_8_9`-style
//! four-model evaluation of one corpus slice, cached vs uncached.
//!
//! The uncached baseline re-runs modulo scheduling per model (the
//! pre-`Session` API's behaviour); the cached variant schedules each loop
//! once. The printed ratio is the headline: it should comfortably exceed
//! 2x, since scheduling dominates the per-loop pipeline and four models
//! share one run.

// Benchmarks measure wall time by definition.
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, criterion_main, Criterion};
use ncdrf::corpus::Corpus;
use ncdrf::machine::Machine;
use ncdrf::{analyze, evaluate, PipelineOptions, Session, PAPER_MODELS};
use ncdrf_bench::bench_corpus;
use std::time::Instant;

/// The latency-3 half of the Figure 8/9 grid: four models x two register
/// budgets (32 and 64), as in the paper. The session shares the base
/// schedule, the swap pass and the budget-independent requirements
/// across all eight evaluations; the uncached baseline re-derives
/// everything per (model, budget).
const BUDGETS: [u32; 2] = [32, 64];
const LATENCY: u32 = 3;

fn uncached_four_models(corpus: &Corpus, machine: &Machine, opts: &PipelineOptions) -> u128 {
    let mut total_cycles = 0u128;
    for budget in BUDGETS {
        for model in PAPER_MODELS {
            for l in corpus.iter() {
                total_cycles += evaluate(l, machine, model, budget, opts).unwrap().cycles();
            }
        }
    }
    total_cycles
}

fn cached_four_models(corpus: &Corpus, machine: &Machine, opts: &PipelineOptions) -> u128 {
    let session = Session::new(machine.clone()).options(*opts);
    let mut total_cycles = 0u128;
    for budget in BUDGETS {
        for model in PAPER_MODELS {
            for l in corpus.iter() {
                total_cycles += session.evaluate(l, model, budget).unwrap().cycles();
            }
        }
    }
    total_cycles
}

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus(20);
    let machine = Machine::clustered(LATENCY, 1);
    let opts = PipelineOptions::default();

    // Correctness guard: the cache must not change any result.
    assert_eq!(
        uncached_four_models(&corpus, &machine, &opts),
        cached_four_models(&corpus, &machine, &opts),
        "cached and uncached evaluation disagree"
    );

    // Headline measurement, printed so the bench run doubles as the
    // demonstration of the acceptance criterion (>= 2x).
    let reps = 10u32;
    let t = Instant::now();
    for _ in 0..reps {
        uncached_four_models(&corpus, &machine, &opts);
    }
    let uncached = t.elapsed();
    let t = Instant::now();
    for _ in 0..reps {
        cached_four_models(&corpus, &machine, &opts);
    }
    let cached = t.elapsed();
    println!(
        "\nsession cache: 4-model x 2-budget evaluation {:.1?} uncached vs {:.1?} cached -> {:.2}x speedup\n",
        uncached / reps,
        cached / reps,
        uncached.as_secs_f64() / cached.as_secs_f64().max(1e-12),
    );

    c.bench_function("session_cache/uncached_4_models", |b| {
        b.iter(|| uncached_four_models(&corpus, &machine, &opts))
    });
    c.bench_function("session_cache/cached_4_models", |b| {
        b.iter(|| cached_four_models(&corpus, &machine, &opts))
    });

    // Analysis-only variant (figures 6/7 pipeline): same caching story.
    c.bench_function("session_cache/uncached_4_models_analyze", |b| {
        b.iter(|| {
            for model in PAPER_MODELS {
                for l in corpus.iter() {
                    analyze(l, &machine, model, &opts).unwrap();
                }
            }
        })
    });
    c.bench_function("session_cache/cached_4_models_analyze", |b| {
        b.iter(|| {
            let session = Session::new(machine.clone()).options(opts);
            for model in PAPER_MODELS {
                for l in corpus.iter() {
                    session.analyze(l, model).unwrap();
                }
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
