//! Benchmark guard for incremental rescheduling: the full spill descent
//! of a corpus slice under the reference full-reschedule path vs the
//! `SchedContext` incremental path, at a budget deep enough that every
//! loop takes several spill steps.
//!
//! Both variants run the *same* descent — the two paths are proven
//! bit-identical by `tests/incremental_resched.rs` and asserted again
//! here before anything is measured — so the delta is pure scheduling
//! cost: arena/SoA scratch reuse, the hoisted per-II analysis, and
//! clean-component reuse where the dirty closure leaves room. The
//! printed headline is the per-spill-step cost of each path.

// Benchmarks measure wall time by definition.
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, criterion_main, Criterion};
use ncdrf::corpus::Corpus;
use ncdrf::ddg::{Loop, LoopBuilder, ValueRef, Weight};
use ncdrf::machine::Machine;
use ncdrf::sched::{modulo_schedule_with, SchedContext, SchedulerOptions};
use ncdrf::spill::{requirement_unified, set_full_resched, spill_until_fits, SpillOptions};
use ncdrf_bench::bench_corpus;
use std::time::Instant;

/// Deep enough that the descent spills repeatedly on most loops.
const BUDGET: u32 = 8;
const LATENCY: u32 = 6;

/// One full spill descent over the corpus; returns (total spill steps,
/// cycle checksum) so the work can't be optimised away and the two
/// modes can be compared for equality.
fn descend(corpus: &Corpus, machine: &Machine) -> (usize, u64) {
    let opts = SpillOptions::default();
    let mut steps = 0usize;
    let mut checksum = 0u64;
    for l in corpus.iter() {
        let r = spill_until_fits(l, machine, BUDGET, &mut requirement_unified, opts).unwrap();
        steps += r.spilled.len();
        checksum = checksum
            .wrapping_mul(31)
            .wrapping_add(u64::from(r.sched.ii()) + r.regs as u64);
    }
    (steps, checksum)
}

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus(20);
    let machine = Machine::clustered(LATENCY, 1);

    // Correctness guard: the incremental path must not change any result.
    set_full_resched(Some(true));
    let full = descend(&corpus, &machine);
    set_full_resched(Some(false));
    let incremental = descend(&corpus, &machine);
    assert_eq!(full, incremental, "rescheduling modes disagree");
    assert!(full.0 > 0, "the descent must actually spill");

    // Headline: per-spill-step cost of each path.
    let reps = 10u32;
    set_full_resched(Some(true));
    let t = Instant::now();
    for _ in 0..reps {
        descend(&corpus, &machine);
    }
    let full_time = t.elapsed();
    set_full_resched(Some(false));
    let t = Instant::now();
    for _ in 0..reps {
        descend(&corpus, &machine);
    }
    let inc_time = t.elapsed();
    let steps = (full.0 as u32 * reps).max(1);
    println!(
        "\nincremental resched: {} spill steps; {:.1?}/step full vs {:.1?}/step incremental -> {:.2}x\n",
        full.0,
        full_time / steps,
        inc_time / steps,
        full_time.as_secs_f64() / inc_time.as_secs_f64().max(1e-12),
    );

    set_full_resched(Some(true));
    c.bench_function("incremental_resched/full_spill_descent", |b| {
        b.iter(|| descend(&corpus, &machine))
    });
    set_full_resched(Some(false));
    c.bench_function("incremental_resched/incremental_spill_descent", |b| {
        b.iter(|| descend(&corpus, &machine))
    });
    set_full_resched(None);

    // The clean-component case: extending a loop whose adder-bound
    // recurrence core is untouched by the (memory-side) extension. The
    // merged attempt only reschedules the four memory ops and reuses
    // the other two dozen placements; the full path reschedules all of
    // them. Both sides pay the base schedule so the delta is the
    // extension step alone.
    let base = separable(false);
    let ext = separable(true);
    let opts = SchedulerOptions::default();
    {
        let mut ctx = SchedContext::new();
        ctx.schedule(&base, &machine, opts).unwrap();
        let got = ctx
            .reschedule_extended(&ext, &machine, opts, base.ops().len())
            .unwrap();
        assert_eq!(got, modulo_schedule_with(&ext, &machine, opts).unwrap());
        assert!(
            ctx.last_reused_ops() > 0,
            "the extension must reuse placements"
        );
    }
    c.bench_function("incremental_resched/extend_separable_full", |b| {
        b.iter(|| {
            let a = modulo_schedule_with(&base, &machine, opts).unwrap();
            let z = modulo_schedule_with(&ext, &machine, opts).unwrap();
            (a.ii(), z.ii())
        })
    });
    c.bench_function("incremental_resched/extend_separable_incremental", |b| {
        let mut ctx = SchedContext::new();
        b.iter(|| {
            let a = ctx.schedule(&base, &machine, opts).unwrap();
            let z = ctx
                .reschedule_extended(&ext, &machine, opts, base.ops().len())
                .unwrap();
            (a.ii(), z.ii())
        })
    });
}

/// A loop whose schedule is bound by 24 independent adder recurrences;
/// the extension appends a second load/store pair, dirtying only the
/// memory component.
fn separable(extended: bool) -> Loop {
    let mut b = LoopBuilder::new("separable");
    let x = b.array_in("x");
    let z = b.array_out("z");
    let ld = b.load("L", x, 0);
    b.store("S", z, 0, ld.now());
    for i in 0..24 {
        let a = b.reserve_add(format!("A{i}"));
        b.bind(a, [ValueRef::Const(1.0), a.prev(1)]);
    }
    if extended {
        let x2 = b.array_in("x2");
        let z2 = b.array_out("z2");
        let ld2 = b.load("L2", x2, 0);
        b.store("S2", z2, 0, ld2.now());
    }
    b.finish(Weight::default()).unwrap()
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
