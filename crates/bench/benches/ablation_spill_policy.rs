//! Ablation: the spill-victim policy — the paper's longest-lifetime rule
//! versus most-instances, fewest-uses and random selection. Prints the
//! spill counts and final IIs each policy produces, and benchmarks them.

use criterion::{criterion_group, criterion_main, Criterion};
use ncdrf::machine::Machine;
use ncdrf::spill::{requirement_unified, spill_until_fits, SpillOptions, SpillPolicy};
use ncdrf_bench::bench_corpus;

fn bench(c: &mut Criterion) {
    let corpus = bench_corpus(20);
    let machine = Machine::clustered(6, 1);
    let budget = 16;

    let policies = [
        ("longest_lifetime", SpillPolicy::LongestLifetime),
        ("most_instances", SpillPolicy::MostInstances),
        ("fewest_uses", SpillPolicy::FewestUses),
        ("random", SpillPolicy::Random(7)),
    ];

    for (name, policy) in policies {
        let mut spills = 0usize;
        let mut total_ii = 0u64;
        for l in corpus.iter() {
            let r = spill_until_fits(
                l,
                &machine,
                budget,
                &mut requirement_unified,
                SpillOptions {
                    policy,
                    ..SpillOptions::default()
                },
            )
            .unwrap();
            spills += r.spilled.len();
            total_ii += r.sched.ii() as u64;
        }
        println!("{name}: {spills} values spilled, total II {total_ii}");
    }

    for (name, policy) in policies {
        c.bench_function(&format!("ablation_spill_policy/{name}"), |b| {
            b.iter(|| {
                for l in corpus.iter() {
                    spill_until_fits(
                        l,
                        &machine,
                        budget,
                        &mut requirement_unified,
                        SpillOptions {
                            policy,
                            ..SpillOptions::default()
                        },
                    )
                    .unwrap();
                }
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
