//! Shared helpers for the Criterion benchmark suite.
//!
//! The benches mirror the experiment binaries one-to-one (`table1`,
//! `fig67`, `fig89`) plus micro-benchmarks of the individual passes and
//! the ablation studies listed in `DESIGN.md` §5. They run on reduced
//! corpora so a full `cargo bench` stays in the minutes range.

use ncdrf::corpus::Corpus;

/// A corpus slice small enough for statistically-stable Criterion runs.
pub fn bench_corpus(n: usize) -> Corpus {
    Corpus::small().take(n)
}

/// A handful of structurally-diverse kernels for micro-benchmarks.
pub fn micro_kernels() -> Vec<ncdrf::ddg::Loop> {
    use ncdrf::corpus::kernels;
    vec![
        kernels::blas::daxpy(),
        kernels::blas::dot(),
        kernels::livermore::state(),
        kernels::stencils::stencil5(),
        kernels::recurrences::chain8(),
        kernels::recurrences::wide8(),
        kernels::recurrences::lotka(),
    ]
}
