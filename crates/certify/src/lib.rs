//! # ncdrf-certify — translation validation for scheduler/spill outputs
//!
//! Every schedule, allocation and spill rewrite the pipeline reports is
//! re-checked here **from first principles**, in the spirit of translation
//! validation: the checker restates the constraints of the paper's §3–§5
//! (modulo dependences, modulo-reservation-table rows, rotating-file
//! lifetime packing, the §5.4 spill rewrite shape) and re-derives every
//! reported quantity with its own algorithms.
//!
//! It deliberately shares **no scheduling or allocation code** with
//! `ncdrf-sched` / `ncdrf-regalloc`: the only things it borrows from them
//! are read-only data types — [`Schedule`] accessors for raw placements,
//! and the [`Lifetime`] record because
//! [`ModelSpec::effective_requirement`](ncdrf::ModelSpec::effective_requirement)
//! hooks are defined over it. In particular the rotating-register
//! interference test is decided by *enumerating* candidate iteration
//! deltas rather than by the allocator's closed-form arithmetic, so a bug
//! in either derivation is caught by the other.
//!
//! The crate exposes free functions for each check plus
//! [`ScheduleCertifier`], the [`CellCertifier`] implementation that
//! `Session`/`Sweep` certify modes, the farm's delivery gate and the
//! `ncdrf_analyze certify` subcommand all plug in.
//!
//! Violations carry a stable rule id (see the `RULE_*` constants
//! re-exported from `ncdrf`) and a detail string naming the offending
//! operations, cycles or register counts.

#![warn(missing_docs)]

use ncdrf::{
    CellCertifier, CertifyViolation, LoopAnalysis, LoopEval, ModelId, RequirementCtx,
    RULE_DEPENDENCE, RULE_FU_BINDING, RULE_MRT_OVERFLOW, RULE_REQUIREMENT, RULE_SPILL_SHAPE,
    RULE_UNIT_CONFLICT,
};
use ncdrf_ddg::{ArrayRole, Loop, OpKind, ValueRef};
use ncdrf_machine::{ClusterId, Machine};
use ncdrf_regalloc::Lifetime;
use ncdrf_sched::Schedule;
use std::collections::HashMap;

fn violation(rule: &'static str, detail: impl Into<String>) -> CertifyViolation {
    CertifyViolation::new(rule, detail)
}

fn op_latency(l: &Loop, machine: &Machine, id: ncdrf_ddg::OpId) -> Result<u32, CertifyViolation> {
    machine
        .latency(l.op(id).kind())
        .map_err(|e| violation(RULE_FU_BINDING, format!("`{}`: {e}", l.op(id).name())))
}

/// Certifies a kernel schedule against the loop and machine it claims to
/// implement:
///
/// * every dependence edge `(from, to, dist)` satisfies
///   `start(to) >= start(from) + latency(from) - dist * II`
///   ([`RULE_DEPENDENCE`]);
/// * every operation is bound to an existing unit instance whose class
///   serves its kind ([`RULE_FU_BINDING`]);
/// * no modulo-reservation-table row issues more operations to a group
///   than the group has units ([`RULE_MRT_OVERFLOW`]);
/// * no unit instance is double-booked within a kernel slot
///   ([`RULE_UNIT_CONFLICT`]).
///
/// # Errors
///
/// Returns the first violation in deterministic (operation) order.
pub fn certify_schedule(
    l: &Loop,
    machine: &Machine,
    sched: &Schedule,
) -> Result<(), CertifyViolation> {
    let ii = sched.ii();
    if ii == 0 {
        return Err(violation(RULE_DEPENDENCE, "the schedule claims II = 0"));
    }
    let ii_i = i64::from(ii);

    for (from, to, dist) in l.sched_edges() {
        let lat = op_latency(l, machine, from)?;
        let earliest = i64::from(sched.start(from)) + i64::from(lat) - ii_i * i64::from(dist);
        if i64::from(sched.start(to)) < earliest {
            return Err(violation(
                RULE_DEPENDENCE,
                format!(
                    "edge `{}` -> `{}` (dist {dist}): `{}` starts at cycle {} but cannot \
                     start before {} (producer start {} + latency {lat} - {dist}*II)",
                    l.op(from).name(),
                    l.op(to).name(),
                    l.op(to).name(),
                    sched.start(to),
                    earliest,
                    sched.start(from),
                ),
            ));
        }
    }

    for (id, op) in l.iter_ops() {
        let unit = sched.unit(id);
        let Some(group) = machine.groups().get(unit.group) else {
            return Err(violation(
                RULE_FU_BINDING,
                format!(
                    "`{}` is bound to group {} but the machine has only {} groups",
                    op.name(),
                    unit.group,
                    machine.groups().len()
                ),
            ));
        };
        if !group.class.serves(op.kind()) {
            return Err(violation(
                RULE_FU_BINDING,
                format!(
                    "`{}` ({}) is bound to a {} unit, which cannot execute it",
                    op.name(),
                    op.kind().mnemonic(),
                    group.class
                ),
            ));
        }
        if unit.instance >= group.count() {
            return Err(violation(
                RULE_FU_BINDING,
                format!(
                    "`{}` is bound to instance {} of the {} group, which has {} unit(s)",
                    op.name(),
                    unit.instance,
                    group.class,
                    group.count()
                ),
            ));
        }
    }

    // MRT rows: walking ops in id order makes the first overfull row
    // deterministic.
    let mut rows: HashMap<(usize, u32), u32> = HashMap::new();
    for (id, op) in l.iter_ops() {
        let unit = sched.unit(id);
        let slot = sched.kernel_slot(id);
        let issued = rows.entry((unit.group, slot)).or_insert(0);
        *issued += 1;
        let capacity = machine.groups()[unit.group].count() as u32;
        if *issued > capacity {
            return Err(violation(
                RULE_MRT_OVERFLOW,
                format!(
                    "kernel slot {slot} issues {} ops to the {} group, which has {} \
                     unit(s); `{}` does not fit",
                    *issued,
                    machine.groups()[unit.group].class,
                    capacity,
                    op.name()
                ),
            ));
        }
    }

    let mut seats: HashMap<(usize, usize, u32), ncdrf_ddg::OpId> = HashMap::new();
    for (id, op) in l.iter_ops() {
        let unit = sched.unit(id);
        let slot = sched.kernel_slot(id);
        if let Some(&prev) = seats.get(&(unit.group, unit.instance, slot)) {
            return Err(violation(
                RULE_UNIT_CONFLICT,
                format!(
                    "`{}` and `{}` both occupy {} unit {} in kernel slot {slot}",
                    l.op(prev).name(),
                    op.name(),
                    machine.groups()[unit.group].class,
                    unit.instance
                ),
            ));
        }
        seats.insert((unit.group, unit.instance, slot), id);
    }

    Ok(())
}

/// Recomputes every value lifetime from the paper's §2 definition: a
/// value lives from its producer's issue cycle until its last consumer
/// finishes (`start(c) + dist * II + latency(c)`); stores produce no
/// value.
fn value_lifetimes(
    l: &Loop,
    machine: &Machine,
    sched: &Schedule,
) -> Result<Vec<Lifetime>, CertifyViolation> {
    let consumers = l.consumers();
    let ii = sched.ii();
    let mut out = Vec::new();
    for (id, op) in l.iter_ops() {
        if !op.kind().produces_value() {
            continue;
        }
        let start = sched.start(id);
        let mut end = start;
        for &(c, dist) in &consumers[id.index()] {
            let lat = op_latency(l, machine, c)?;
            end = end.max(sched.start(c) + dist * ii + lat);
        }
        out.push(Lifetime { op: id, start, end });
    }
    Ok(out)
}

/// The peak number of simultaneously-live instances over the II kernel
/// cycles, restricted to the lifetimes selected by `keep`. An instance
/// `k` of a value is live at kernel cycle `t` when
/// `start + k*II <= t < end + k*II`.
fn peak_live<F: Fn(usize) -> bool>(lts: &[Lifetime], ii: u32, keep: F) -> u32 {
    let ii_i = i64::from(ii);
    let mut best: i64 = 0;
    for t in 0..ii_i {
        let mut live: i64 = 0;
        for (i, lt) in lts.iter().enumerate() {
            if !keep(i) || lt.end <= lt.start {
                continue;
            }
            live += (t - i64::from(lt.start)).div_euclid(ii_i)
                - (t - i64::from(lt.end)).div_euclid(ii_i);
        }
        best = best.max(live);
    }
    best.max(0) as u32
}

/// Whether two lifetimes placed at rotating offsets `oa` / `ob` in a file
/// of `r` registers ever occupy the same physical register while both
/// live.
///
/// Instance `k` of a value at offset `o` occupies register `(o + k) mod r`
/// during `[start + k*II, end + k*II)`. For iteration delta `d = ka - kb`
/// the intervals overlap iff `sb - ea < d*II < eb - sa`, and the registers
/// coincide iff `d ≡ ob - oa (mod r)`. The candidate deltas are
/// **enumerated** over a window covering the open interval — a different
/// decision procedure from the allocator's closed form, on purpose.
fn rotating_overlap(a: &Lifetime, b: &Lifetime, ii: u32, oa: i64, ob: i64, r: i64) -> bool {
    if a.end <= a.start || b.end <= b.start {
        return false;
    }
    let ii = i64::from(ii);
    let (sa, ea) = (i64::from(a.start), i64::from(a.end));
    let (sb, eb) = (i64::from(b.start), i64::from(b.end));
    let want = (ob - oa).rem_euclid(r);
    let lo = (sb - ea).div_euclid(ii);
    let hi = (eb - sa).div_euclid(ii) + 1;
    let mut d = lo;
    while d <= hi {
        if d * ii > sb - ea && d * ii < eb - sa && d.rem_euclid(r) == want {
            return true;
        }
        d += 1;
    }
    false
}

/// Wands-Only / First-Fit packing, re-derived: lifetimes take the lowest
/// interference-free rotating offset in start-time order, and the file
/// grows from the `lower` pressure bound until the packing succeeds.
/// `interferes(u, v)` says whether two lifetimes can ever share a
/// physical register (always, for a unified file; share-a-subfile, for
/// the dual file).
fn first_fit_registers(
    lts: &[Lifetime],
    ii: u32,
    lower: u32,
    interferes: &dyn Fn(usize, usize) -> bool,
) -> u32 {
    let n = lts.len();
    if n == 0 || lts.iter().all(|lt| lt.end <= lt.start) {
        return 0;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (lts[i].start, i));
    let mut r = i64::from(lower.max(1));
    'grow: loop {
        let mut offsets: Vec<Option<i64>> = vec![None; n];
        for &vi in &order {
            if lts[vi].end <= lts[vi].start {
                offsets[vi] = Some(0);
                continue;
            }
            let mut chosen = None;
            'candidate: for c in 0..r {
                for (ui, off) in offsets.iter().enumerate() {
                    let Some(off) = off else { continue };
                    if !interferes(ui, vi) {
                        continue;
                    }
                    if rotating_overlap(&lts[vi], &lts[ui], ii, c, *off, r) {
                        continue 'candidate;
                    }
                }
                chosen = Some(c);
                break;
            }
            match chosen {
                Some(c) => offsets[vi] = Some(c),
                None => {
                    r += 1;
                    continue 'grow;
                }
            }
        }
        return r as u32;
    }
}

/// Where a value lives in the non-consistent dual file, re-derived from
/// the clusters of its consumers (§4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Residence {
    /// Read by both clusters: replicated in both subfiles.
    Both,
    /// Read by one cluster: only that cluster's subfile.
    Only(ClusterId),
}

impl Residence {
    fn in_file(self, file: ClusterId) -> bool {
        match self {
            Residence::Both => true,
            Residence::Only(c) => c == file,
        }
    }
}

fn residences(l: &Loop, machine: &Machine, sched: &Schedule, lts: &[Lifetime]) -> Vec<Residence> {
    let consumers = l.consumers();
    lts.iter()
        .map(|lt| {
            let mut left = false;
            let mut right = false;
            let mut last = None;
            for &(c, _) in &consumers[lt.op.index()] {
                let cluster = sched.cluster(c, machine);
                last = Some(cluster);
                if cluster == ClusterId::LEFT {
                    left = true;
                } else {
                    right = true;
                }
            }
            match (left, right) {
                (true, true) => Residence::Both,
                (true, false) => Residence::Only(ClusterId::LEFT),
                (false, true) => Residence::Only(last.expect("consumer seen")),
                // Unconsumed values cannot occur in validated loops.
                (false, false) => Residence::Only(ClusterId::LEFT),
            }
        })
        .collect()
}

/// Recomputes the register requirement of `model` from raw lifetimes and
/// compares it with `reported` ([`RULE_REQUIREMENT`] on mismatch).
///
/// `sched` must be the exact schedule the requirement was reported for —
/// for swapping models, after the swap pass (the requirement of a
/// swapped cell is a pure function of the post-swap schedule, so no swap
/// logic is needed here). [`ModelSpec::effective_requirement`] hooks are
/// applied: they *define* the model and are shared deliberately.
///
/// [`ModelSpec::effective_requirement`]: ncdrf::ModelSpec::effective_requirement
///
/// # Errors
///
/// Returns a violation on mismatch or when the machine cannot serve the
/// loop.
pub fn certify_requirement(
    l: &Loop,
    machine: &Machine,
    sched: &Schedule,
    model: ModelId,
    reported: u32,
) -> Result<(), CertifyViolation> {
    let spec = model.spec();
    if spec.is_ideal() {
        if reported != 0 {
            return Err(violation(
                RULE_REQUIREMENT,
                format!(
                    "model `{model}` has infinite registers but reports a requirement of {reported}"
                ),
            ));
        }
        return Ok(());
    }
    let ii = sched.ii();
    let lts = value_lifetimes(l, machine, sched)?;
    let raw = if spec.is_dual() {
        let res = residences(l, machine, sched, &lts);
        let left = peak_live(&lts, ii, |i| res[i].in_file(ClusterId::LEFT));
        let right = peak_live(&lts, ii, |i| res[i].in_file(ClusterId::RIGHT));
        first_fit_registers(&lts, ii, left.max(right), &|a, b| {
            [ClusterId::LEFT, ClusterId::RIGHT]
                .iter()
                .any(|&f| res[a].in_file(f) && res[b].in_file(f))
        })
    } else {
        first_fit_registers(&lts, ii, peak_live(&lts, ii, |_| true), &|_, _| true)
    };
    let ctx = RequirementCtx {
        l,
        ii,
        lifetimes: &lts,
    };
    let expected = spec.effective_requirement(raw, &ctx);
    if expected != reported {
        return Err(violation(
            RULE_REQUIREMENT,
            format!(
                "model `{model}` reports a requirement of {reported} register(s), but \
                 independent reallocation needs {expected} (raw packing {raw})"
            ),
        ));
    }
    Ok(())
}

/// Certifies an unlimited-register analysis cell: the schedule itself,
/// then the reported II, MaxLive, requirement and (for dual models)
/// per-class pressures against independent recomputation.
///
/// # Errors
///
/// Returns the first violation found.
pub fn certify_analysis(
    l: &Loop,
    machine: &Machine,
    sched: &Schedule,
    analysis: &LoopAnalysis,
) -> Result<(), CertifyViolation> {
    certify_schedule(l, machine, sched)?;
    if analysis.ii != sched.ii() {
        return Err(violation(
            RULE_REQUIREMENT,
            format!(
                "analysis reports II {} but the certified schedule achieves II {}",
                analysis.ii,
                sched.ii()
            ),
        ));
    }
    let lts = value_lifetimes(l, machine, sched)?;
    let max_live = peak_live(&lts, sched.ii(), |_| true);
    if analysis.max_live != max_live {
        return Err(violation(
            RULE_REQUIREMENT,
            format!(
                "analysis reports MaxLive {} but raw lifetimes give {}",
                analysis.max_live, max_live
            ),
        ));
    }
    certify_requirement(l, machine, sched, analysis.model, analysis.regs)?;

    let dual = analysis.model.spec().is_dual();
    match (&analysis.pressure, dual) {
        (None, false) => {}
        (Some(_), false) => {
            return Err(violation(
                RULE_REQUIREMENT,
                format!(
                    "model `{}` is not dual but the analysis reports subfile pressures",
                    analysis.model
                ),
            ));
        }
        (None, true) => {
            return Err(violation(
                RULE_REQUIREMENT,
                format!(
                    "dual model `{}` reports no subfile pressures",
                    analysis.model
                ),
            ));
        }
        (Some(p), true) => {
            let res = residences(l, machine, sched, &lts);
            let ii = sched.ii();
            let recomputed = [
                (
                    "global",
                    p.global,
                    peak_live(&lts, ii, |i| res[i] == Residence::Both),
                ),
                (
                    "left",
                    p.left,
                    peak_live(&lts, ii, |i| res[i] == Residence::Only(ClusterId::LEFT)),
                ),
                (
                    "right",
                    p.right,
                    peak_live(&lts, ii, |i| res[i] == Residence::Only(ClusterId::RIGHT)),
                ),
                (
                    "left_total",
                    p.left_total,
                    peak_live(&lts, ii, |i| res[i].in_file(ClusterId::LEFT)),
                ),
                (
                    "right_total",
                    p.right_total,
                    peak_live(&lts, ii, |i| res[i].in_file(ClusterId::RIGHT)),
                ),
            ];
            for (name, reported, expected) in recomputed {
                if reported != expected {
                    return Err(violation(
                        RULE_REQUIREMENT,
                        format!(
                            "dual pressure `{name}` reports {reported} but raw lifetimes \
                             give {expected}"
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Certifies that `rewritten` is `original` plus a shape-sound spill of
/// exactly the claimed victims (§5.4): every victim's value flows only
/// into its spill store (the lifetime split), every reload reads the
/// victim's spill slot at its consumer's distance and is ordered after
/// the store, no spill code is unclaimed, and the memory-operation
/// counts add up ([`RULE_SPILL_SHAPE`] on any mismatch).
///
/// # Errors
///
/// Returns the first violation found.
pub fn certify_spill_shape(
    original: &Loop,
    rewritten: &Loop,
    spilled: &[String],
    spill_stores: usize,
    spill_loads: usize,
) -> Result<(), CertifyViolation> {
    for (i, victim) in spilled.iter().enumerate() {
        if spilled[..i].contains(victim) {
            return Err(violation(
                RULE_SPILL_SHAPE,
                format!("victim `{victim}` is claimed twice"),
            ));
        }
        if victim.starts_with("RL.") || victim.starts_with("SS.") {
            return Err(violation(
                RULE_SPILL_SHAPE,
                format!("spill code `{victim}` cannot itself be a victim"),
            ));
        }
    }

    let consumers = rewritten.consumers();
    for victim in spilled {
        let Some(vid) = rewritten.find_op(victim) else {
            return Err(violation(
                RULE_SPILL_SHAPE,
                format!("claimed victim `{victim}` does not exist in the rewritten loop"),
            ));
        };
        if !rewritten.op(vid).kind().produces_value() {
            return Err(violation(
                RULE_SPILL_SHAPE,
                format!("claimed victim `{victim}` produces no value"),
            ));
        }
        let slot_name = format!("spill.{victim}");
        let Some(slot) = rewritten.find_array(&slot_name) else {
            return Err(violation(
                RULE_SPILL_SHAPE,
                format!("no spill array `{slot_name}` for victim `{victim}`"),
            ));
        };
        if rewritten.arrays()[slot.index()].role() != ArrayRole::InOut {
            return Err(violation(
                RULE_SPILL_SHAPE,
                format!("spill array `{slot_name}` must be read-write"),
            ));
        }
        let store_name = format!("SS.{victim}");
        let Some(ss) = rewritten.find_op(&store_name) else {
            return Err(violation(
                RULE_SPILL_SHAPE,
                format!("victim `{victim}` has no spill store `{store_name}`"),
            ));
        };
        let ss_op = rewritten.op(ss);
        if ss_op.kind() != OpKind::Store {
            return Err(violation(
                RULE_SPILL_SHAPE,
                format!("spill store `{store_name}` is not a store"),
            ));
        }
        match ss_op.mem() {
            Some(m) if m.array == slot && m.offset == 0 => {}
            _ => {
                return Err(violation(
                    RULE_SPILL_SHAPE,
                    format!("spill store `{store_name}` does not write `{slot_name}` at offset 0"),
                ));
            }
        }
        if ss_op.inputs() != [ValueRef::Op { id: vid, dist: 0 }] {
            return Err(violation(
                RULE_SPILL_SHAPE,
                format!("spill store `{store_name}` does not store `{victim}`'s value"),
            ));
        }
        // The lifetime split: after the rewrite the victim's value flows
        // only into its spill store; every former consumer reads a reload.
        let cons = &consumers[vid.index()];
        if cons.len() != 1 || cons[0] != (ss, 0) {
            return Err(violation(
                RULE_SPILL_SHAPE,
                format!(
                    "victim `{victim}` is still consumed directly ({} consumer(s)); the \
                     spill must split its lifetime at `{store_name}`",
                    cons.len()
                ),
            ));
        }
        let reload_prefix = format!("RL.{victim}.");
        if !rewritten
            .iter_ops()
            .any(|(_, op)| op.name().starts_with(&reload_prefix))
        {
            return Err(violation(
                RULE_SPILL_SHAPE,
                format!("victim `{victim}` was spilled but has no reloads"),
            ));
        }
    }

    let mut stores_found = 0usize;
    let mut loads_found = 0usize;
    for (id, op) in rewritten.iter_ops() {
        let name = op.name();
        if let Some(rest) = name.strip_prefix("SS.") {
            stores_found += 1;
            if !spilled.iter().any(|v| v == rest) {
                return Err(violation(
                    RULE_SPILL_SHAPE,
                    format!("spill store `{name}` stores a victim nobody claims"),
                ));
            }
        } else if name.starts_with("RL.") {
            loads_found += 1;
            if op.kind() != OpKind::Load {
                return Err(violation(
                    RULE_SPILL_SHAPE,
                    format!("reload `{name}` is not a load"),
                ));
            }
            // The owning victim is the longest claimed name the reload's
            // name extends (victim names could in principle contain dots).
            let Some(victim) = spilled
                .iter()
                .filter(|v| name.starts_with(&format!("RL.{v}.")))
                .max_by_key(|v| v.len())
            else {
                return Err(violation(
                    RULE_SPILL_SHAPE,
                    format!("reload `{name}` reloads a victim nobody claims"),
                ));
            };
            let tail = &name["RL.".len() + victim.len() + 1..];
            let Some((consumer_name, dist_str)) = tail.rsplit_once('.') else {
                return Err(violation(
                    RULE_SPILL_SHAPE,
                    format!("reload `{name}` has a malformed name"),
                ));
            };
            let Ok(dist) = dist_str.parse::<u32>() else {
                return Err(violation(
                    RULE_SPILL_SHAPE,
                    format!("reload `{name}` has a malformed distance `{dist_str}`"),
                ));
            };
            let slot = rewritten
                .find_array(&format!("spill.{victim}"))
                .expect("victim loop above checked the slot array");
            match op.mem() {
                Some(m) if m.array == slot && m.offset == -i64::from(dist) => {}
                _ => {
                    return Err(violation(
                        RULE_SPILL_SHAPE,
                        format!("reload `{name}` does not read `spill.{victim}` at offset -{dist}"),
                    ));
                }
            }
            let Some(consumer) = rewritten.find_op(consumer_name) else {
                return Err(violation(
                    RULE_SPILL_SHAPE,
                    format!(
                        "reload `{name}` names consumer `{consumer_name}`, which does not exist"
                    ),
                ));
            };
            if !rewritten
                .op(consumer)
                .inputs()
                .contains(&ValueRef::Op { id, dist: 0 })
            {
                return Err(violation(
                    RULE_SPILL_SHAPE,
                    format!("consumer `{consumer_name}` does not read reload `{name}`"),
                ));
            }
            let ss = rewritten
                .find_op(&format!("SS.{victim}"))
                .expect("victim loop above checked the store");
            if !rewritten
                .deps()
                .iter()
                .any(|d| d.from == ss && d.to == id && d.dist == dist)
            {
                return Err(violation(
                    RULE_SPILL_SHAPE,
                    format!(
                        "reload `{name}` is not ordered after `SS.{victim}` at distance {dist}"
                    ),
                ));
            }
        }
    }

    if stores_found != spilled.len() || stores_found != spill_stores {
        return Err(violation(
            RULE_SPILL_SHAPE,
            format!(
                "the loop carries {stores_found} spill store(s) for {} claimed victim(s), \
                 but {spill_stores} store(s) are reported",
                spilled.len()
            ),
        ));
    }
    if loads_found != spill_loads {
        return Err(violation(
            RULE_SPILL_SHAPE,
            format!("the loop carries {loads_found} reload(s) but {spill_loads} are reported"),
        ));
    }
    let expected_mem = original.memory_ops() + spill_stores + spill_loads;
    if rewritten.memory_ops() != expected_mem {
        return Err(violation(
            RULE_SPILL_SHAPE,
            format!(
                "the rewritten loop has {} memory op(s); the original's {} plus \
                 {spill_stores} store(s) and {spill_loads} reload(s) should give {expected_mem}",
                rewritten.memory_ops(),
                original.memory_ops()
            ),
        ));
    }
    Ok(())
}

/// Certifies a budgeted evaluation cell: the final schedule, the reported
/// requirement, the spill-rewrite shape, and the cell's derived scalars
/// (spilled count, memory ops, fits flag).
///
/// # Errors
///
/// Returns the first violation found.
#[allow(clippy::too_many_arguments)]
pub fn certify_eval(
    original: &Loop,
    machine: &Machine,
    final_l: &Loop,
    sched: &Schedule,
    spilled: &[String],
    spill_stores: usize,
    spill_loads: usize,
    eval: &LoopEval,
) -> Result<(), CertifyViolation> {
    certify_schedule(final_l, machine, sched)?;
    if eval.ii != sched.ii() {
        return Err(violation(
            RULE_REQUIREMENT,
            format!(
                "evaluation reports II {} but the certified schedule achieves II {}",
                eval.ii,
                sched.ii()
            ),
        ));
    }
    certify_requirement(final_l, machine, sched, eval.model, eval.regs)?;
    if !spilled.is_empty() || spill_stores != 0 || spill_loads != 0 {
        certify_spill_shape(original, final_l, spilled, spill_stores, spill_loads)?;
    }
    if eval.spilled != spilled.len() {
        return Err(violation(
            RULE_SPILL_SHAPE,
            format!(
                "evaluation reports {} spilled value(s) but {} victims are claimed",
                eval.spilled,
                spilled.len()
            ),
        ));
    }
    if eval.mem_ops != final_l.memory_ops() {
        return Err(violation(
            RULE_SPILL_SHAPE,
            format!(
                "evaluation reports {} memory op(s) but the final loop body has {}",
                eval.mem_ops,
                final_l.memory_ops()
            ),
        ));
    }
    let fits = eval.regs <= eval.budget || eval.model.spec().is_ideal();
    if eval.fits != fits {
        return Err(violation(
            RULE_REQUIREMENT,
            format!(
                "evaluation claims fits = {} with requirement {} against budget {}",
                eval.fits, eval.regs, eval.budget
            ),
        ));
    }
    Ok(())
}

/// Certifies one restored spill-trajectory checkpoint: its schedule and
/// its recorded requirement under `model`. Step 0 is the unspilled base.
///
/// # Errors
///
/// Returns the first violation, located with the checkpoint step.
pub fn certify_checkpoint(
    step: usize,
    l: &Loop,
    machine: &Machine,
    sched: &Schedule,
    model: ModelId,
    regs: u32,
) -> Result<(), CertifyViolation> {
    certify_schedule(l, machine, sched)
        .and_then(|()| certify_requirement(l, machine, sched, model, regs))
        .map_err(|v| v.locate(format!("checkpoint {step}: ")))
}

/// The stateless [`CellCertifier`] implementation over this crate's
/// checks — what `Sweep::certify`, the farm's delivery gate and
/// `ncdrf_analyze certify` all instantiate.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScheduleCertifier;

impl CellCertifier for ScheduleCertifier {
    fn certify_analysis(
        &self,
        l: &Loop,
        machine: &Machine,
        sched: &Schedule,
        analysis: &LoopAnalysis,
    ) -> Result<(), CertifyViolation> {
        certify_analysis(l, machine, sched, analysis)
    }

    fn certify_eval(
        &self,
        original: &Loop,
        machine: &Machine,
        final_l: &Loop,
        sched: &Schedule,
        spilled: &[String],
        spill_stores: usize,
        spill_loads: usize,
        eval: &LoopEval,
    ) -> Result<(), CertifyViolation> {
        certify_eval(
            original,
            machine,
            final_l,
            sched,
            spilled,
            spill_stores,
            spill_loads,
            eval,
        )
    }

    fn certify_checkpoint(
        &self,
        step: usize,
        l: &Loop,
        machine: &Machine,
        sched: &Schedule,
        model: ModelId,
        regs: u32,
    ) -> Result<(), CertifyViolation> {
        certify_checkpoint(step, l, machine, sched, model, regs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf_ddg::OpId;

    fn lt(i: usize, start: u32, end: u32) -> Lifetime {
        Lifetime {
            op: OpId::from_index(i),
            start,
            end,
        }
    }

    #[test]
    fn rotating_overlap_agrees_with_instance_enumeration() {
        let cases = [
            (lt(0, 0, 7), lt(1, 1, 4), 2u32, 5i64),
            (lt(0, 2, 9), lt(1, 0, 13), 3, 6),
            (lt(0, 0, 1), lt(1, 0, 1), 1, 2),
            (lt(0, 4, 20), lt(1, 5, 8), 4, 7),
            (lt(0, 0, 13), lt(1, 0, 13), 1, 26),
        ];
        for (a, b, ii, r) in cases {
            for oa in 0..r {
                for ob in 0..r {
                    let fast = rotating_overlap(&a, &b, ii, oa, ob, r);
                    let mut slow = false;
                    for ka in -40i64..40 {
                        for kb in -40i64..40 {
                            if (oa + ka).rem_euclid(r) != (ob + kb).rem_euclid(r) {
                                continue;
                            }
                            let (s1, e1) = (
                                i64::from(a.start) + ka * i64::from(ii),
                                i64::from(a.end) + ka * i64::from(ii),
                            );
                            let (s2, e2) = (
                                i64::from(b.start) + kb * i64::from(ii),
                                i64::from(b.end) + kb * i64::from(ii),
                            );
                            if s1 < e2 && s2 < e1 {
                                slow = true;
                            }
                        }
                    }
                    assert_eq!(fast, slow, "ii={ii} r={r} oa={oa} ob={ob}");
                }
            }
        }
    }

    #[test]
    fn peak_live_counts_helical_instances() {
        // One value of length 13 at II=1 keeps 13 instances live.
        assert_eq!(peak_live(&[lt(0, 0, 13)], 1, |_| true), 13);
        assert_eq!(peak_live(&[lt(0, 0, 13)], 2, |_| true), 7);
        assert_eq!(peak_live(&[lt(0, 0, 13)], 13, |_| true), 1);
        // Empty lifetimes never count.
        assert_eq!(peak_live(&[lt(0, 5, 5)], 3, |_| true), 0);
    }

    #[test]
    fn first_fit_needs_sum_of_instances_at_ii_one() {
        // The paper's §4.1 example at II=1: lifetimes 13+7+6+6+6+4 = 42.
        let lts = [
            lt(0, 0, 13),
            lt(1, 0, 7),
            lt(2, 1, 7),
            lt(3, 4, 10),
            lt(4, 7, 13),
            lt(5, 10, 14),
        ];
        let lower = peak_live(&lts, 1, |_| true);
        assert_eq!(first_fit_registers(&lts, 1, lower, &|_, _| true), 42);
    }

    #[test]
    fn disjoint_interference_classes_pack_independently() {
        // Two overlapping values that never share a subfile: one register
        // suffices for each subfile.
        let lts = [lt(0, 0, 4), lt(1, 0, 4)];
        let never = |_: usize, _: usize| false;
        assert_eq!(first_fit_registers(&lts, 4, 1, &never), 1);
        let always = |_: usize, _: usize| true;
        assert_eq!(first_fit_registers(&lts, 4, 2, &always), 2);
    }
}
