//! `shard_runner` CLI contract: the run → (inject) → merge → reissue →
//! merge-verify pipeline across real processes and files, and the exit
//! codes schedulers key on — `0` ok, `1` verification mismatch, `2`
//! usage error, `3` bad artifact. A parse failure must *not* exit
//! through the usage path: a retrying scheduler treats 2 as "operator
//! error, stop" and 3 as "re-fetch / re-run this artifact".

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn runner() -> Command {
    Command::new(env!("CARGO_BIN_EXE_shard_runner"))
}

fn run_in(dir: &Path, args: &[&str]) -> Output {
    runner()
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn shard_runner")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("shard_runner exited via signal")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A scratch directory unique to this test process.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("shard_runner_cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn usage_errors_exit_2() {
    let dir = scratch("usage");
    for args in [
        &[][..],
        &["frobnicate"][..],
        &["run"][..],
        &["run", "--shard", "nonsense"][..],
        &["run", "--shard", "7/4"][..],
        &["merge"][..],
        &["merge", "--bogus-flag", "x.json"][..],
        &["reissue"][..],
    ] {
        let out = run_in(&dir, args);
        assert_eq!(code(&out), 2, "args {args:?}: {}", stderr(&out));
        assert!(stderr(&out).contains("usage:"), "args {args:?}");
    }
}

#[test]
fn bad_artifacts_exit_3() {
    let dir = scratch("bad-artifacts");
    // Unreadable file.
    let out = run_in(&dir, &["merge", "no-such-file.json"]);
    assert_eq!(code(&out), 3, "{}", stderr(&out));
    // Garbage bytes.
    std::fs::write(dir.join("garbage.json"), "{not json").unwrap();
    let out = run_in(&dir, &["merge", "garbage.json"]);
    assert_eq!(code(&out), 3, "{}", stderr(&out));
    assert!(stderr(&out).contains("parse"), "{}", stderr(&out));
    // Structurally valid JSON of the wrong kind.
    std::fs::write(dir.join("wrong.json"), "{\"kind\":\"other\"}").unwrap();
    let out = run_in(&dir, &["merge", "wrong.json"]);
    assert_eq!(code(&out), 3, "{}", stderr(&out));
    // Reissue inherits the same artifact discipline.
    let out = run_in(&dir, &["reissue", "--from", "garbage.json"]);
    assert_eq!(code(&out), 3, "{}", stderr(&out));
}

/// One real artifact, duplicated into a merge: a *valid* artifact in an
/// invalid combination is still an artifact-level failure (3), and a
/// tampered artifact fails the bit-identity verification (1).
#[test]
fn overlap_exits_3_and_tampering_exits_1() {
    let dir = scratch("verify");
    let out = run_in(
        &dir,
        &[
            "run",
            "--shard",
            "0/1",
            "--grid",
            "fig89",
            "--take",
            "4",
            "--out",
            "whole.json",
        ],
    );
    assert_eq!(code(&out), 0, "{}", stderr(&out));

    // The same artifact twice: overlapping cells → 3.
    let out = run_in(&dir, &["merge", "whole.json", "whole.json"]);
    assert_eq!(code(&out), 3, "{}", stderr(&out));

    // Untampered: the merge verifies bit-identically → 0.
    let out = run_in(
        &dir,
        &["merge", "whole.json", "--verify-against-sequential"],
    );
    assert_eq!(code(&out), 0, "{}", stderr(&out));

    // Tampered numbers parse fine but cannot match the sequential
    // reference → 1. (Tampering a result value, not a cache counter:
    // counter edits are caught earlier by the parser's per-cell-sum
    // check and exit 3.)
    let json = std::fs::read_to_string(dir.join("whole.json")).unwrap();
    let tampered = json.replacen("\"iterations\":", "\"iterations\":1", 1);
    assert_ne!(tampered, json);
    std::fs::write(dir.join("tampered.json"), &tampered).unwrap();
    let out = run_in(
        &dir,
        &["merge", "tampered.json", "--verify-against-sequential"],
    );
    assert_eq!(code(&out), 1, "{}", stderr(&out));
    assert!(
        stderr(&out).contains("verification FAILED"),
        "{}",
        stderr(&out)
    );

    // A counter edit *is* caught at parse time.
    let counter_tampered = json.replacen("\"misses\":", "\"misses\":1", 1);
    assert_ne!(counter_tampered, json);
    std::fs::write(dir.join("counters.json"), &counter_tampered).unwrap();
    let out = run_in(&dir, &["merge", "counters.json"]);
    assert_eq!(code(&out), 3, "{}", stderr(&out));
    assert!(stderr(&out).contains("counters"), "{}", stderr(&out));
}

/// The full heal pipeline across processes: four shard runs with
/// injected per-cell failures, consolidated, reissued, and merged with
/// the heal artifact — the final merge must verify **bit-identical** to
/// the in-process sequential reference.
#[test]
fn injected_failures_heal_and_verify_bit_identical() {
    let dir = scratch("heal");
    for i in 0..4 {
        let shard = format!("{i}/4");
        let out_file = format!("shard-{i}.json");
        let out = run_in(
            &dir,
            &[
                "run",
                "--shard",
                &shard,
                "--grid",
                "fig89",
                "--take",
                "6",
                "--inject-fail",
                "1,4,10",
                "--out",
                &out_file,
            ],
        );
        assert_eq!(code(&out), 0, "shard {i}: {}", stderr(&out));
    }

    // Consolidate (this is the `MERGED.json` reissue reads). The merge
    // itself succeeds — failures are reported, not fatal.
    let out = run_in(
        &dir,
        &[
            "merge",
            "shard-0.json",
            "shard-1.json",
            "shard-2.json",
            "shard-3.json",
            "--out-artifact",
            "merged-cells.json",
            "--out",
            "broken-report.json",
        ],
    );
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        stdout.contains("3 failed (machine, loop) pair(s)"),
        "{stdout}"
    );

    // Reissue exactly the failed cells from the consolidated artifact.
    let out = run_in(
        &dir,
        &[
            "reissue",
            "--from",
            "merged-cells.json",
            "--out",
            "heal.json",
        ],
    );
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("3 of 12 grid cells"), "{stdout}");

    // Merge the consolidated artifact with its heal: complete, and
    // byte-identical to the sequential reference.
    let out = run_in(
        &dir,
        &[
            "merge",
            "merged-cells.json",
            "heal.json",
            "--verify-against-sequential",
            "--out",
            "healed-report.json",
        ],
    );
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("[no failures]"), "{stdout}");
    assert!(stdout.contains("[verified:"), "{stdout}");

    // The healed report differs from the broken one (the heal really
    // contributed cells) and parses as a versioned partial sweep.
    let broken = std::fs::read_to_string(dir.join("broken-report.json")).unwrap();
    let healed = std::fs::read_to_string(dir.join("healed-report.json")).unwrap();
    assert_ne!(broken, healed);
    let parsed = ncdrf::parse_partial_sweep(&healed).unwrap();
    assert!(parsed.is_complete());
}
