//! Figure 8: performance of the four models with 32 and 64 registers at
//! latencies 3 and 6, with the §5.4 spiller inserting spill code whenever
//! a loop exceeds the file.

use ncdrf::{
    csv_budget_outcomes, figures_8_9, render_budget_outcomes, BudgetMetric, PipelineOptions,
    FIG89_CONFIGS,
};
use ncdrf_experiments::{banner, Cli};

fn main() {
    let cli = Cli::parse();
    banner("Figure 8: performance under finite register files", &cli);

    let mut all = Vec::new();
    for (lat, regs) in FIG89_CONFIGS {
        let outcomes = figures_8_9(&cli.corpus, lat, regs, &PipelineOptions::default())
            .expect("corpus loops always schedule");
        println!("--- L={lat}, R={regs} ---");
        println!(
            "{}",
            render_budget_outcomes(&outcomes, BudgetMetric::Performance)
        );
        all.extend(outcomes);
    }
    cli.write("fig8.csv", &csv_budget_outcomes(&all));
    println!(
        "paper shape: with 64 registers Partitioned/Swapped ~ Ideal while \
         Unified loses at latency 6; with 32 registers Unified degrades \
         sharply and Swapped beats Partitioned where pressure is highest."
    );
}
