//! Figure 8: performance of the four models with 32 and 64 registers at
//! latencies 3 and 6, with the §5.4 spiller inserting spill code whenever
//! a loop exceeds the file.

use ncdrf::{BudgetMetric, BudgetTable, Render, ReportFormat, Sweep, FIG89_CONFIGS, PAPER_MODELS};
use ncdrf_experiments::{banner, run_or_shard, Cli};

fn main() {
    let cli = Cli::parse();
    banner("Figure 8: performance under finite register files", &cli);

    // One sweep covers the whole latency × register grid; each loop is
    // scheduled once per machine no matter how many models/budgets run.
    // The fault-tolerant entry point keeps the grid alive if an exotic
    // corpus loop fails: the pair is skipped by name, not the figure.
    // Under `--shard i/n` only that slice runs and a mergeable JSON
    // artifact is written instead.
    let sweep = Sweep::new(&cli.corpus)
        .clustered_latencies([3, 6])
        .models(PAPER_MODELS)
        .budgets([32, 64]);
    let Some(partial) = run_or_shard(&cli, &sweep, "fig8") else {
        return;
    };
    let report = partial.report;

    for (lat, regs) in FIG89_CONFIGS {
        let outcomes: Vec<_> = report
            .outcomes_for(&format!("C2L{lat}"), regs)
            .into_iter()
            .cloned()
            .collect();
        println!("--- L={lat}, R={regs} ---");
        println!(
            "{}",
            BudgetTable {
                outcomes: &outcomes,
                metric: BudgetMetric::Performance
            }
            .render(ReportFormat::Text)
        );
    }
    cli.write("fig8.csv", &report.outcomes.render(ReportFormat::Csv));
    println!("[schedule cache: {}]\n", report.scheduling);
    println!(
        "paper shape: with 64 registers Partitioned/Swapped ~ Ideal while \
         Unified loses at latency 6; with 32 registers Unified degrades \
         sharply and Swapped beats Partitioned where pressure is highest."
    );
}
