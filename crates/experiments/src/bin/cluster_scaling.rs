//! Extension study (beyond the paper): how the non-consistent register
//! file's requirement scales with the number of clusters.
//!
//! The paper evaluates k = 2; its model generalises directly — a value is
//! replicated into exactly the subfiles of its consuming clusters. This
//! binary sweeps k ∈ {1, 2, 4} on machines with one adder, one multiplier
//! and one load/store unit per cluster and reports the average per-loop
//! requirement (max subfile) against the unified alternative with the
//! same total datapath.

use ncdrf::machine::Machine;
use ncdrf::regalloc::{allocate_multi, allocate_unified, classify_multi};
use ncdrf::Session;
use ncdrf_exec::Pool;
use ncdrf_experiments::{banner, Cli};
use std::fmt::Write as _;

fn main() {
    let cli = Cli::parse();
    banner("Extension: requirement scaling with cluster count", &cli);

    // This study is not expressible as a `Sweep` (it uses the k-cluster
    // allocator), so it drives the execution pool directly: one task per
    // loop, summed in corpus order so the output stays deterministic.
    let pool = Pool::new();
    let loops = cli.corpus.loops();
    let mut csv = String::from("clusters,latency,avg_unified,avg_ncdrf,avg_ii\n");
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>8}",
        "clusters", "latency", "avg unified", "avg ncdrf", "avg II"
    );
    for lat in [3u32, 6] {
        for k in [1u32, 2, 4] {
            let machine = Machine::clustered_n(k, lat, 1);
            let session = Session::new(machine.clone());
            let per_loop = pool.run(loops.len(), |i| {
                let l = &loops[i];
                let base = session.base(l).ok()?;
                let (sched, lts) = (&base.sched, &base.lifetimes);
                let uni = allocate_unified(lts, sched.ii()).regs as u64;
                let sets = classify_multi(l, &machine, sched, lts);
                let multi = allocate_multi(lts, &sets, sched.ii(), k).regs as u64;
                Some((uni, multi, sched.ii() as u64))
            });
            let mut uni_sum = 0u64;
            let mut multi_sum = 0u64;
            let mut ii_sum = 0u64;
            let mut count = 0u64;
            for r in per_loop {
                let some = match r {
                    // A contained worker panic is skipped like an
                    // unschedulable loop, but loudly: the averages below
                    // cover fewer loops than the banner advertises.
                    Err(p) => {
                        eprintln!("[skipped] {p}");
                        None
                    }
                    Ok(per_loop) => per_loop,
                };
                let Some((uni, multi, ii)) = some else {
                    continue;
                };
                uni_sum += uni;
                multi_sum += multi;
                ii_sum += ii;
                count += 1;
            }
            let (u, m, i) = (
                uni_sum as f64 / count as f64,
                multi_sum as f64 / count as f64,
                ii_sum as f64 / count as f64,
            );
            println!("{k:>8} {lat:>8} {u:>12.1} {m:>12.1} {i:>8.2}");
            let _ = writeln!(csv, "{k},{lat},{u:.3},{m:.3},{i:.3}");
        }
    }
    cli.write("cluster_scaling.csv", &csv);
    println!(
        "\nexpected shape: the unified requirement grows with the datapath \
         width (more overlap), while the per-subfile NCDRF requirement \
         grows far slower — the organisation scales."
    );
}
