//! Per-stage cost profile of the pipeline (schedule / lifetimes /
//! unified allocation / dual allocation / swap / schedule clone) over a
//! corpus slice: `profile_stages [skip] [count]`. This is the tool that
//! exposed First-Fit allocation as the original hot path.

// A profiler measures wall time by definition.
#![allow(clippy::disallowed_methods)]

use ncdrf::corpus::Corpus;
use ncdrf::machine::Machine;
use ncdrf::regalloc::{allocate_dual, allocate_unified, classify, lifetimes};
use ncdrf::sched::modulo_schedule;
use ncdrf::swap::swap_pass;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let skip: usize = args.get(1).map(|a| a.parse().unwrap()).unwrap_or(0);
    let n: usize = args.get(2).map(|a| a.parse().unwrap()).unwrap_or(20);
    let corpus = Corpus::small().filter({
        let mut i = 0;
        move |_| {
            i += 1;
            i > skip && i <= skip + n
        }
    });
    let machine = Machine::clustered(6, 1);
    let reps = 20;

    let t = Instant::now();
    for _ in 0..reps {
        for l in corpus.iter() {
            std::hint::black_box(modulo_schedule(l, &machine).unwrap());
        }
    }
    println!("schedule:  {:?}", t.elapsed() / reps);

    let scheds: Vec<_> = corpus
        .iter()
        .map(|l| modulo_schedule(l, &machine).unwrap())
        .collect();
    let t = Instant::now();
    for _ in 0..reps {
        for (l, s) in corpus.iter().zip(&scheds) {
            std::hint::black_box(lifetimes(l, &machine, s).unwrap());
        }
    }
    println!("lifetimes: {:?}", t.elapsed() / reps);

    let lts: Vec<_> = corpus
        .iter()
        .zip(&scheds)
        .map(|(l, s)| lifetimes(l, &machine, s).unwrap())
        .collect();
    let t = Instant::now();
    for _ in 0..reps {
        for (s, lt) in scheds.iter().zip(&lts) {
            std::hint::black_box(allocate_unified(lt, s.ii()));
        }
    }
    println!("alloc_uni: {:?}", t.elapsed() / reps);

    let t = Instant::now();
    for _ in 0..reps {
        for ((l, s), lt) in corpus.iter().zip(&scheds).zip(&lts) {
            let classes = classify(l, &machine, s, lt);
            std::hint::black_box(allocate_dual(lt, &classes, s.ii()));
        }
    }
    println!("dual:      {:?}", t.elapsed() / reps);

    let t = Instant::now();
    for _ in 0..reps {
        for (l, s) in corpus.iter().zip(&scheds) {
            let mut s2 = s.clone();
            std::hint::black_box(swap_pass(l, &machine, &mut s2).unwrap());
        }
    }
    println!("swap:      {:?}", t.elapsed() / reps);

    let t = Instant::now();
    for _ in 0..reps {
        for s in &scheds {
            std::hint::black_box(s.clone());
        }
    }
    println!("clone:     {:?}", t.elapsed() / reps);
}
