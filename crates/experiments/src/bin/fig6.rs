//! Figure 6: static cumulative distribution of loops over register
//! requirements, for the Unified / Partitioned / Swapped models at
//! latencies 3 and 6.

use ncdrf::{csv_distribution, default_points, figures_6_7, render_distribution, PipelineOptions};
use ncdrf_experiments::{banner, Cli};

fn main() {
    let cli = Cli::parse();
    banner("Figure 6: static cumulative distribution of loops", &cli);

    let points = default_points();
    let mut all = Vec::new();
    for lat in [3, 6] {
        let curves = figures_6_7(&cli.corpus, lat, &points, &PipelineOptions::default())
            .expect("corpus loops always schedule");
        println!("{}", render_distribution(&curves, false));
        all.extend(curves);
    }
    cli.write("fig6.csv", &csv_distribution(&all));
    println!(
        "paper shape: Partitioned lies left of (above) Unified, Swapped \
         slightly left of Partitioned; the gap grows with latency."
    );
}
