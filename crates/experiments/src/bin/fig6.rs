//! Figure 6: static cumulative distribution of loops over register
//! requirements, for the Unified / Partitioned / Swapped models at
//! latencies 3 and 6.

use ncdrf::{default_points, DistributionPanel, Render, ReportFormat, Sweep, PAPER_FINITE_MODELS};
use ncdrf_experiments::{banner, run_or_shard, Cli};

fn main() {
    let cli = Cli::parse();
    banner("Figure 6: static cumulative distribution of loops", &cli);

    let sweep = Sweep::new(&cli.corpus)
        .clustered_latencies([3, 6])
        .models(PAPER_FINITE_MODELS)
        .points(default_points());
    // Under `--shard i/n` only that slice of the grid runs, a mergeable
    // JSON artifact is written, and there is nothing to render yet.
    let Some(partial) = run_or_shard(&cli, &sweep, "fig6") else {
        return;
    };
    let report = partial.report;

    for lat in [3, 6] {
        let curves: Vec<_> = report
            .distributions
            .iter()
            .filter(|c| c.latency == lat)
            .cloned()
            .collect();
        println!(
            "{}",
            DistributionPanel {
                curves: &curves,
                dynamic: false
            }
            .render(ReportFormat::Text)
        );
    }
    cli.write("fig6.csv", &report.distributions.render(ReportFormat::Csv));
    println!(
        "[schedule cache: {} runs, {} hits]\n",
        report.scheduling.misses, report.scheduling.hits
    );
    println!(
        "paper shape: Partitioned lies left of (above) Unified, Swapped \
         slightly left of Partitioned; the gap grows with latency."
    );
}
