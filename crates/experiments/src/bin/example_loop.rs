//! Tables 2-4: the §4 worked example — lifetimes, GL/LO/RO classification
//! before swapping, and the classification after swapping.

use ncdrf::ddg::{LoopBuilder, Weight};
use ncdrf::machine::Machine;
use ncdrf::regalloc::{
    allocate_dual, allocate_unified, classify, lifetimes, DualPressure, ValueClass,
};
use ncdrf::swap::swap_pass;
use ncdrf::Session;
use ncdrf_experiments::Cli;
use std::fmt::Write as _;

fn main() {
    let cli = Cli::parse();
    println!("=== Tables 2-4: the §4 worked example ===\n");

    let mut b = LoopBuilder::new("fig2");
    let r = b.invariant("r", 0.5);
    let t = b.invariant("t", 1.5);
    let x = b.array_in("x");
    let y = b.array_in("y");
    let z = b.array_out("z");
    let l1 = b.load("L1", x, 0);
    let l2 = b.load("L2", y, 0);
    let m3 = b.mul("M3", l1.now(), r);
    let a4 = b.add("A4", m3.now(), l2.now());
    let m5 = b.mul("M5", a4.now(), t);
    let a6 = b.add("A6", m5.now(), l1.now());
    b.store("S7", z, 0, a6.now());
    let l = b.finish(Weight::new(100, 1)).unwrap();

    let machine = Machine::clustered(3, 2);
    let session = Session::new(machine.clone());
    let base = session.base(&l).unwrap();
    let mut sched = base.sched.clone();
    let lts = base.lifetimes.clone();

    let mut csv = String::from("table,op,start,end,lifetime,class\n");

    println!("Table 2 — lifetimes (II={}):", sched.ii());
    let classes = classify(&l, &machine, &sched, &lts);
    for (lt, class) in lts.iter().zip(&classes) {
        let name = l.op(lt.op).name();
        println!(
            "  {:<3} start {:>2} end {:>2} lifetime {:>2}",
            name,
            lt.start,
            lt.end,
            lt.len()
        );
        let _ = writeln!(
            csv,
            "2,{name},{},{},{},{}",
            lt.start,
            lt.end,
            lt.len(),
            class_name(*class)
        );
    }
    let total: u32 = lts.iter().map(|lt| lt.len()).sum();
    println!(
        "  sum {total}; unified allocation {}",
        allocate_unified(&lts, sched.ii()).regs
    );

    let p = DualPressure::new(&lts, &classes, sched.ii());
    println!(
        "\nTable 3 — before swapping: GL {} LO {} RO {} -> max cluster {} \
         (allocation {})",
        p.global,
        p.left,
        p.right,
        p.requirement_bound(),
        allocate_dual(&lts, &classes, sched.ii()).regs
    );

    let outcome = swap_pass(&l, &machine, &mut sched).unwrap();
    let lts2 = lifetimes(&l, &machine, &sched).unwrap();
    let classes2 = classify(&l, &machine, &sched, &lts2);
    let p2 = DualPressure::new(&lts2, &classes2, sched.ii());
    println!(
        "\nTable 4 — after swapping ({} action(s)): GL {} LO {} RO {} -> max \
         cluster {} (allocation {})",
        outcome.actions.len(),
        p2.global,
        p2.left,
        p2.right,
        p2.requirement_bound(),
        allocate_dual(&lts2, &classes2, sched.ii()).regs
    );
    for (lt, class) in lts2.iter().zip(&classes2) {
        let _ = writeln!(
            csv,
            "4,{},{},{},{},{}",
            l.op(lt.op).name(),
            lt.start,
            lt.end,
            lt.len(),
            class_name(*class)
        );
    }
    cli.write("example_loop.csv", &csv);
}

fn class_name(c: ValueClass) -> &'static str {
    use ncdrf::machine::ClusterId;
    match c {
        ValueClass::Global => "GL",
        ValueClass::Only(ClusterId::LEFT) => "LO",
        ValueClass::Only(_) => "RO",
    }
}
