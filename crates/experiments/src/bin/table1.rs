//! Table 1: percentage of loops allocatable without spilling within
//! 16/32/64 registers — and the percentage of execution cycles those loops
//! represent — on the unified `PxLy` machines.

use ncdrf::{csv_table1, render_table1, table1, PipelineOptions};
use ncdrf_experiments::{banner, Cli};

fn main() {
    let cli = Cli::parse();
    banner("Table 1: allocatable loops under PxLy configurations", &cli);

    let configs = [(1, 3), (2, 3), (1, 6), (2, 6)];
    let rows = table1(&cli.corpus, &configs, &PipelineOptions::default())
        .expect("corpus loops always schedule");

    println!("{}", render_table1(&rows));
    cli.write("table1.csv", &csv_table1(&rows));

    println!(
        "paper shape: pressure grows down the table; P2L6 leaves a \
         noticeable share of loops (and a larger share of cycles) above 64\n\
         registers."
    );
}
