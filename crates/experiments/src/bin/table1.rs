//! Table 1: percentage of loops allocatable without spilling within
//! 16/32/64 registers — and the percentage of execution cycles those loops
//! represent — on the unified `PxLy` machines.

use ncdrf::{ModelId, Render, ReportFormat, Sweep, TABLE1_POINTS};
use ncdrf_experiments::{banner, run_or_shard, Cli};

fn main() {
    let cli = Cli::parse();
    banner("Table 1: allocatable loops under PxLy configurations", &cli);

    let sweep = Sweep::new(&cli.corpus)
        .pxly_configs([(1, 3), (2, 3), (1, 6), (2, 6)])
        .models([ModelId::UNIFIED])
        .points(TABLE1_POINTS);
    let Some(partial) = run_or_shard(&cli, &sweep, "table1") else {
        return;
    };
    let rows = partial.report.table1();

    println!("{}", rows.render(ReportFormat::Text));
    cli.write("table1.csv", &rows.render(ReportFormat::Csv));

    println!(
        "paper shape: pressure grows down the table; P2L6 leaves a \
         noticeable share of loops (and a larger share of cycles) above 64\n\
         registers."
    );
}
