//! Related-work comparison (§3.3 + §4's discussion of refs [18][22]):
//! measures the single-use property that motivates both the NCDRF and the
//! sack organisation, then compares three register-file organisations on
//! the same schedules — unified, non-consistent dual, and central+sacks.

use ncdrf::machine::Machine;
use ncdrf::regalloc::{
    allocate_dual, allocate_unified, assign_sacks, classify, single_use_fraction, SackConfig,
};
use ncdrf::Session;
use ncdrf_experiments::{banner, Cli};
use std::fmt::Write as _;

fn main() {
    let cli = Cli::parse();
    banner("Related work: single-use property, NCDRF vs sacks", &cli);

    let mut csv =
        String::from("latency,single_use,avg_unified,avg_ncdrf,avg_sack_central,avg_sack_total\n");
    for lat in [3u32, 6] {
        let machine = Machine::clustered(lat, 1);
        let mut su = 0.0;
        let mut uni = 0u64;
        let mut dual = 0u64;
        let mut central = 0u64;
        let mut sack_total = 0u64;
        let mut count = 0u64;
        let session = Session::new(machine.clone());
        for l in cli.corpus.iter() {
            let Ok(base) = session.base(l) else {
                continue;
            };
            let (sched, lts) = (&base.sched, &base.lifetimes);
            su += single_use_fraction(l, lts);
            uni += allocate_unified(lts, sched.ii()).regs as u64;
            let classes = classify(l, &machine, sched, lts);
            dual += allocate_dual(lts, &classes, sched.ii()).regs as u64;
            let sacks =
                assign_sacks(l, &machine, sched, lts, SackConfig { sacks: 4 }).expect("servable");
            central += sacks.central_regs() as u64;
            sack_total += (sacks.central_regs() + sacks.sack_regs()) as u64;
            count += 1;
        }
        let c = count as f64;
        println!(
            "latency {lat}: {:.0}% of register instances are single-use",
            100.0 * su / c
        );
        println!("  avg unified requirement          {:>6.1}", uni as f64 / c);
        println!(
            "  avg NCDRF requirement (max file) {:>6.1}",
            dual as f64 / c
        );
        println!(
            "  avg sack organisation: central {:>6.1} (+ {:.1} cheap sack regs)\n",
            central as f64 / c,
            (sack_total - central) as f64 / c
        );
        let _ = writeln!(
            csv,
            "{lat},{:.4},{:.2},{:.2},{:.2},{:.2}",
            su / c,
            uni as f64 / c,
            dual as f64 / c,
            central as f64 / c,
            sack_total as f64 / c
        );
    }
    cli.write("related_work.csv", &csv);
    println!(
        "both organisations exploit the same single-use property: the \
         NCDRF shrinks the requirement of every (multiported) subfile, \
         while sacks move single-use values to cheap port-limited storage \
         at the price of steering constraints."
    );
}
