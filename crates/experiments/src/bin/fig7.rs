//! Figure 7: dynamic (execution-cycle-weighted) cumulative distribution of
//! register requirements — the same curves as Figure 6 but weighted by
//! estimated execution time (iterations x II).

use ncdrf::{csv_distribution, default_points, figures_6_7, render_distribution, PipelineOptions};
use ncdrf_experiments::{banner, Cli};

fn main() {
    let cli = Cli::parse();
    banner("Figure 7: dynamic cumulative distribution of cycles", &cli);

    let points = default_points();
    let mut all = Vec::new();
    for lat in [3, 6] {
        let curves = figures_6_7(&cli.corpus, lat, &points, &PipelineOptions::default())
            .expect("corpus loops always schedule");
        println!("{}", render_distribution(&curves, true));
        all.extend(curves);
    }
    cli.write("fig7.csv", &csv_distribution(&all));
    println!(
        "paper shape: high-pressure loops carry disproportionate execution \
         weight, so the dynamic gap between models exceeds the static one."
    );
}
