//! Figure 7: dynamic (execution-cycle-weighted) cumulative distribution of
//! register requirements — the same curves as Figure 6 but weighted by
//! estimated execution time (iterations x II).

use ncdrf::{default_points, DistributionPanel, Render, ReportFormat, Sweep, PAPER_FINITE_MODELS};
use ncdrf_experiments::{banner, run_or_shard, Cli};

fn main() {
    let cli = Cli::parse();
    banner("Figure 7: dynamic cumulative distribution of cycles", &cli);

    let sweep = Sweep::new(&cli.corpus)
        .clustered_latencies([3, 6])
        .models(PAPER_FINITE_MODELS)
        .points(default_points());
    let Some(partial) = run_or_shard(&cli, &sweep, "fig7") else {
        return;
    };
    let report = partial.report;

    for lat in [3, 6] {
        let curves: Vec<_> = report
            .distributions
            .iter()
            .filter(|c| c.latency == lat)
            .cloned()
            .collect();
        println!(
            "{}",
            DistributionPanel {
                curves: &curves,
                dynamic: true
            }
            .render(ReportFormat::Text)
        );
    }
    cli.write("fig7.csv", &report.distributions.render(ReportFormat::Csv));
    println!(
        "[schedule cache: {} runs, {} hits]\n",
        report.scheduling.misses, report.scheduling.hits
    );
    println!(
        "paper shape: high-pressure loops carry disproportionate execution \
         weight, so the dynamic gap between models exceeds the static one."
    );
}
