//! Figure 9: density of memory traffic (average bus occupancy per cycle)
//! for the same model/latency/register grid as Figure 8.

use ncdrf::{BudgetMetric, BudgetTable, Render, ReportFormat, Sweep, FIG89_CONFIGS, PAPER_MODELS};
use ncdrf_experiments::{banner, run_or_shard, Cli};

fn main() {
    let cli = Cli::parse();
    banner("Figure 9: density of memory traffic", &cli);

    let sweep = Sweep::new(&cli.corpus)
        .clustered_latencies([3, 6])
        .models(PAPER_MODELS)
        .budgets([32, 64]);
    let Some(partial) = run_or_shard(&cli, &sweep, "fig9") else {
        return;
    };
    let report = partial.report;

    for (lat, regs) in FIG89_CONFIGS {
        let outcomes: Vec<_> = report
            .outcomes_for(&format!("C2L{lat}"), regs)
            .into_iter()
            .cloned()
            .collect();
        println!("--- L={lat}, R={regs} ---");
        println!(
            "{}",
            BudgetTable {
                outcomes: &outcomes,
                metric: BudgetMetric::TrafficDensity
            }
            .render(ReportFormat::Text)
        );
    }
    cli.write("fig9.csv", &report.outcomes.render(ReportFormat::Csv));
    println!("[schedule cache: {}]\n", report.scheduling);
    println!(
        "paper shape: Partitioned/Swapped carry less traffic than Unified \
         (less spill code) except at L=6/R=32 where heavy spilling makes \
         the three converge."
    );
}
