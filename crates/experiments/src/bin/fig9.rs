//! Figure 9: density of memory traffic (average bus occupancy per cycle)
//! for the same model/latency/register grid as Figure 8.

use ncdrf::{
    csv_budget_outcomes, figures_8_9, render_budget_outcomes, BudgetMetric, PipelineOptions,
    FIG89_CONFIGS,
};
use ncdrf_experiments::{banner, Cli};

fn main() {
    let cli = Cli::parse();
    banner("Figure 9: density of memory traffic", &cli);

    let mut all = Vec::new();
    for (lat, regs) in FIG89_CONFIGS {
        let outcomes = figures_8_9(&cli.corpus, lat, regs, &PipelineOptions::default())
            .expect("corpus loops always schedule");
        println!("--- L={lat}, R={regs} ---");
        println!(
            "{}",
            render_budget_outcomes(&outcomes, BudgetMetric::TrafficDensity)
        );
        all.extend(outcomes);
    }
    cli.write("fig9.csv", &csv_budget_outcomes(&all));
    println!(
        "paper shape: Partitioned/Swapped carry less traffic than Unified \
         (less spill code) except at L=6/R=32 where heavy spilling makes \
         the three converge."
    );
}
