//! Session-cache speedup grid: uncached vs cached vs cached+pooled
//! four-model evaluation across corpus slices, latencies and register
//! budgets. Complements the `session_cache` criterion bench with a
//! workload-shape overview. The pooled column drives the corpus through
//! `Session::evaluate_corpus`, i.e. the work-stealing execution pool; on
//! a single hardware thread it tracks the cached column, on multi-core
//! hosts it adds the loop-level parallel speedup on top of caching.

// A timing scan measures wall time by definition.
#![allow(clippy::disallowed_methods)]

use ncdrf::corpus::Corpus;
use ncdrf::machine::Machine;
use ncdrf::{evaluate, PipelineOptions, Session, PAPER_MODELS};
use std::time::Instant;

fn main() {
    let opts = PipelineOptions::default();
    for (name, skip, n) in [
        ("kernels", 0usize, 20usize),
        ("mixed", 30, 20),
        ("deep", 60, 20),
        ("wide", 78, 10),
        ("recur", 89, 10),
    ] {
        let corpus = Corpus::small().filter({
            let mut i = 0;
            move |_| {
                i += 1;
                i > skip && i <= skip + n
            }
        });
        for lat in [3u32, 6] {
            for budget in [32u32, 64] {
                let machine = Machine::clustered(lat, 1);
                let reps = 5;
                let t = Instant::now();
                for _ in 0..reps {
                    for model in PAPER_MODELS {
                        for l in corpus.iter() {
                            evaluate(l, &machine, model, budget, &opts).unwrap();
                        }
                    }
                }
                let unc = t.elapsed();
                let t = Instant::now();
                for _ in 0..reps {
                    let session = Session::new(machine.clone()).options(opts);
                    for model in PAPER_MODELS {
                        for l in corpus.iter() {
                            session.evaluate(l, model, budget).unwrap();
                        }
                    }
                }
                let cac = t.elapsed();
                let t = Instant::now();
                for _ in 0..reps {
                    let session = Session::new(machine.clone()).options(opts);
                    for model in PAPER_MODELS {
                        session.evaluate_corpus(&corpus, model, budget).unwrap();
                    }
                }
                let pooled = t.elapsed();
                println!(
                    "{name:>8} L{lat} R{budget}: {:>9.1?} -> {:>9.1?} ({:.2}x) -> pooled {:>9.1?} ({:.2}x)",
                    unc / reps,
                    cac / reps,
                    unc.as_secs_f64() / cac.as_secs_f64(),
                    pooled / reps,
                    unc.as_secs_f64() / pooled.as_secs_f64()
                );
            }
        }
    }
}
