//! Multi-process sharded sweep driver with heal-and-resume support.
//!
//! `shard_runner run` evaluates one shard of a fixed experiment grid and
//! writes a mergeable JSON artifact; `shard_runner merge` reassembles
//! any complete set of such artifacts into the full report and can
//! verify the result against an in-process sequential run;
//! `shard_runner reissue` re-runs exactly the cells a shard set failed
//! to deliver (failed outcomes and lost shards alike) and writes a
//! **heal artifact** that `merge` accepts as a complement — so a
//! partially-failed grid is healed cell-by-cell instead of re-run from
//! scratch. This is how the CI matrix splits the experiment grid over
//! four runners (on the fast `small` corpus; pass `--standard` for the
//! 795-loop population), proves the merged report **bit-identical** to
//! an unsharded `Sweep::run_sequential`, and — in the `heal-verify`
//! job — proves the same for a run with deliberately injected per-cell
//! failures after healing.
//!
//! ```text
//! shard_runner run --shard <i>/<n> [--out FILE.json] [--grid GRID] [--standard]
//!                  [--take N] [--persist-trajectories] [--inject-fail T1,T2,..]
//! shard_runner merge [--verify-against-sequential] [--out FILE.json]
//!                    [--out-artifact FILE.json] FILE.json...
//! shard_runner reissue --from FILE.json... --out HEAL.json [--persist-trajectories]
//! shard_runner worker --farm HOST:PORT [--poll-ms MS] [--workers N] [--exit-when-idle]
//! ```
//!
//! Grids: `full` (default; Figure 6–9 machines, models, points and
//! budgets in one sweep), `fig67`, `fig89`, `table1`, `extended`.
//!
//! `worker` turns this binary into a farm worker: it pulls cell leases
//! from a running `farm_daemon` over HTTP, evaluates them on a shared
//! in-process pool (rebuilding the sweep from the lease's grid
//! signature, injecting any requested faults, importing any seed
//! trajectories) and delivers the resulting shard artifacts back.
//! `--exit-when-idle` makes it drain the queue and exit — the shape the
//! CI farm gate uses.
//!
//! `--persist-trajectories` records each cell's spill-trajectory
//! checkpoints in the artifact (shard format v3), so a later `reissue`
//! resumes the descents instead of respilling from zero; `--inject-fail`
//! marks the named grid cells failed without evaluating them (the
//! deliberate-failure half of the heal CI gate; indices outside the
//! runner's shard are ignored, so every runner of a matrix can take the
//! same list).
//!
//! Exit codes: `0` success, `1` verification mismatch, `2` usage or
//! configuration error, `3` unreadable/corrupt/incompatible artifact.

use ncdrf::corpus::Corpus;
use ncdrf::machine::Machine;
use ncdrf::{GridSignature, PartialSweep, Render, ReportFormat, Sweep, SweepShard};
use ncdrf_experiments::parse_shard_spec;
use std::process::exit;

const USAGE: &str = "usage:
  shard_runner run --shard <i>/<n> [--out FILE.json] [--grid full|fig67|fig89|table1|extended] [--standard]
                   [--take N] [--persist-trajectories] [--inject-fail T1,T2,..]
  shard_runner merge [--verify-against-sequential] [--out FILE.json] [--out-artifact FILE.json] FILE.json...
  shard_runner reissue --from FILE.json... --out HEAL.json [--persist-trajectories]
  shard_runner worker --farm HOST:PORT [--poll-ms MS] [--workers N] [--exit-when-idle]
exit codes: 0 ok, 1 verification mismatch, 2 usage error, 3 bad artifact";

/// Usage / configuration error: exit 2.
fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    exit(2);
}

/// Unreadable, corrupt or incompatible artifact: exit 3. Distinct from
/// usage errors so a scheduler retrying shards can tell "operator typo"
/// from "re-fetch / re-run this artifact".
fn die_artifact(message: &str) -> ! {
    eprintln!("error: {message}");
    exit(3);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("merge") => merge(&args[1..]),
        Some("reissue") => reissue(&args[1..]),
        Some("worker") => worker(&args[1..]),
        Some(other) => die(&format!("unknown subcommand `{other}`")),
        None => die("missing subcommand"),
    }
}

/// Value of `--flag <value>`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| match args.get(i + 1) {
            Some(v) => v.as_str(),
            None => die(&format!("`{flag}` needs a value")),
        })
}

/// Builds the named experiment grid over `corpus`. The grid presets are
/// pinned in [`ncdrf::preset_sweep`] — shared with the farm daemon, not
/// on any command line — so two runners can only disagree by naming
/// different presets, which the merge's signature check catches.
fn build_sweep<'c>(corpus: &'c Corpus, grid: &str) -> Sweep<'c> {
    ncdrf::preset_sweep(corpus, grid).unwrap_or_else(|| die(&format!("unknown grid `{grid}`")))
}

/// Writes `contents` to `path`, creating parent directories.
fn write_file(path: &str, contents: &str) {
    ncdrf::write_artifact(path, contents).unwrap_or_else(|e| die(&e.to_string()));
    println!("[wrote {path}]");
}

fn run(args: &[String]) {
    let (index, count) = match flag_value(args, "--shard") {
        Some(spec) => parse_shard_spec(spec).unwrap_or_else(|e| die(&e)),
        None => die("`run` needs `--shard <i>/<n>`"),
    };
    let grid = flag_value(args, "--grid").unwrap_or("full");
    let mut corpus = if args.iter().any(|a| a == "--standard") {
        Corpus::standard()
    } else {
        Corpus::small()
    };
    if let Some(n) = flag_value(args, "--take") {
        let n: usize = n
            .parse()
            .unwrap_or_else(|_| die(&format!("`--take` needs a count, got `{n}`")));
        corpus = corpus.take(n);
    }
    let faults: Vec<u64> = match flag_value(args, "--inject-fail") {
        None => Vec::new(),
        Some(list) => list
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .unwrap_or_else(|_| die(&format!("`--inject-fail` holds a non-index: `{t}`")))
            })
            .collect(),
    };
    let out = flag_value(args, "--out")
        .map(str::to_owned)
        .unwrap_or_else(|| format!("shard-{index}-of-{count}.json"));

    let sweep = build_sweep(&corpus, grid)
        .persist_trajectories(args.iter().any(|a| a == "--persist-trajectories"));
    let shard = sweep
        .shard_with_faults(index, count, &faults)
        .unwrap_or_else(|e| die(&e.to_string()));
    print!("{}", shard.render(ReportFormat::Text));
    if !faults.is_empty() {
        println!("[injected {} cell failure(s)]", shard.failure_count());
    }
    write_file(&out, &shard.render(ReportFormat::Json));
}

fn read_shards(files: &[&str]) -> Vec<SweepShard> {
    ncdrf::read_shards(files).unwrap_or_else(|e| die_artifact(&e.to_string()))
}

/// The positional (non-flag) arguments: `value_flags` consume the
/// following argument, `bool_flags` stand alone, anything else starting
/// with `--` is a usage error.
fn positional_args<'a>(
    args: &'a [String],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Vec<&'a str> {
    let mut files = Vec::new();
    let mut skip = false;
    for a in args.iter() {
        if skip {
            skip = false;
            continue;
        }
        match a.as_str() {
            flag if value_flags.contains(&flag) => skip = true,
            flag if bool_flags.contains(&flag) => {}
            flag if flag.starts_with("--") => die(&format!("unknown flag `{flag}`")),
            file => files.push(file),
        }
    }
    files
}

fn merge(args: &[String]) {
    let verify = args.iter().any(|a| a == "--verify-against-sequential");
    let out = flag_value(args, "--out");
    let out_artifact = flag_value(args, "--out-artifact");
    let files = positional_args(
        args,
        &["--out", "--out-artifact"],
        &["--verify-against-sequential"],
    );
    if files.is_empty() {
        die("`merge` needs at least one shard file");
    }

    let shards = read_shards(&files);
    println!(
        "[merging {} artifact(s) covering {} grid cells]",
        shards.len(),
        shards.iter().map(SweepShard::cell_count).sum::<usize>()
    );
    let merged = SweepShard::merge(&shards).unwrap_or_else(|e| die_artifact(&e.to_string()));
    print!("{}", merged.render(ReportFormat::Text));
    if let Some(path) = out {
        write_file(path, &merged.render(ReportFormat::Json));
    }
    if let Some(path) = out_artifact {
        // The consolidated cell-level artifact: one 1/1 shard carrying
        // every resolved cell (and its persisted trajectories), usable
        // both as a future merge input and as `reissue --from`.
        let consolidated =
            SweepShard::consolidate(&shards).unwrap_or_else(|e| die_artifact(&e.to_string()));
        write_file(path, &consolidated.render(ReportFormat::Json));
    }
    if verify {
        verify_against_sequential(&merged, shards[0].signature());
    }
}

fn reissue(args: &[String]) {
    let persist = args.iter().any(|a| a == "--persist-trajectories");
    let out = flag_value(args, "--out").unwrap_or("heal.json");
    let files = positional_args(args, &["--out"], &["--from", "--persist-trajectories"]);
    if files.is_empty() {
        die("`reissue` needs `--from FILE.json...`");
    }

    let shards = read_shards(&files);
    let missing = SweepShard::unresolved(&shards).unwrap_or_else(|e| die_artifact(&e.to_string()));
    let sig = shards[0].signature();
    println!(
        "[{} of {} grid cells failed or missing]",
        missing.len(),
        sig.total_tasks()
    );

    let (corpus, machines) = rebuild_grid(sig);
    let sweep = ncdrf::sweep_for_signature(sig, &corpus, machines).persist_trajectories(persist);
    let heal = sweep
        .reissue(&missing, &shards)
        .unwrap_or_else(|e| die_artifact(&e.to_string()));
    print!("{}", heal.render(ReportFormat::Text));
    write_file(out, &heal.render(ReportFormat::Json));
}

fn worker(args: &[String]) {
    let farm =
        flag_value(args, "--farm").unwrap_or_else(|| die("`worker` needs `--farm HOST:PORT`"));
    let farm = farm.strip_prefix("http://").unwrap_or(farm);
    let addr: std::net::SocketAddr = {
        use std::net::ToSocketAddrs;
        farm.to_socket_addrs()
            .ok()
            .and_then(|mut a| a.next())
            .unwrap_or_else(|| die(&format!("cannot resolve farm address `{farm}`")))
    };
    let poll_ms: u64 = flag_value(args, "--poll-ms")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| die(&format!("`--poll-ms` needs milliseconds, got `{v}`")))
        })
        .unwrap_or(200);
    let pool = std::sync::Arc::new(match flag_value(args, "--workers") {
        Some(n) => ncdrf_exec::Pool::with_workers(
            n.parse()
                .unwrap_or_else(|_| die(&format!("`--workers` needs a count, got `{n}`"))),
        ),
        None => ncdrf_exec::Pool::new(),
    });
    let exit_when_idle = args.iter().any(|a| a == "--exit-when-idle");
    let name = format!("shard_runner-{}", std::process::id());

    let mut delivered = 0usize;
    loop {
        let (status, body) = match ncdrf_farm::request(addr, "POST", "/leases", &name) {
            Ok(reply) => reply,
            Err(e) => die(&format!("farm unreachable: {e}")),
        };
        match status {
            200 => {}
            204 => {
                if exit_when_idle {
                    println!("[farm idle; delivered {delivered} artifact(s)]");
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(poll_ms));
                continue;
            }
            other => die(&format!("farm refused the claim: HTTP {other}: {body}")),
        }
        let offer = ncdrf_farm::LeaseOffer::from_json(&body)
            .unwrap_or_else(|e| die_artifact(&format!("lease offer: {e}")));
        let lease = offer.lease;
        println!(
            "[lease {lease}: {} cell(s) of {} for {}]",
            offer.tasks.len(),
            offer.signature.total_tasks(),
            offer.job
        );
        let artifact = ncdrf_farm::evaluate_lease(&offer, Some(std::sync::Arc::clone(&pool)))
            .unwrap_or_else(|e| die_artifact(&e));
        let path = format!("/leases/{lease}/artifact");
        match ncdrf_farm::request(addr, "POST", &path, &artifact.render(ReportFormat::Json)) {
            Ok((200, _)) => delivered += 1,
            Ok((status, body)) => die(&format!("farm refused the delivery: HTTP {status}: {body}")),
            Err(e) => die(&format!("farm unreachable: {e}")),
        }
    }
}

/// Rebuilds the corpus and machine grid a signature names, refusing
/// silently-different grids; exits 3 when this build cannot reproduce
/// them. (The shared logic — including the latency/port cross-check —
/// lives in [`ncdrf::rebuild_grid`].)
fn rebuild_grid(sig: &GridSignature) -> (Corpus, Vec<Machine>) {
    ncdrf::rebuild_grid(sig).unwrap_or_else(|e| die_artifact(&e.to_string()))
}

/// Recomputes the merged grid sequentially in this process and asserts
/// the merged report is bit-identical (value equality *and* identical
/// serialized bytes). Exits `1` on mismatch.
fn verify_against_sequential(merged: &PartialSweep, sig: &GridSignature) {
    let (corpus, machines) = rebuild_grid(sig);
    let sweep = ncdrf::sweep_for_signature(sig, &corpus, machines);

    let reference = if merged.is_complete() {
        match sweep.run_sequential() {
            Ok(report) => PartialSweep {
                report,
                errors: Vec::new(),
            },
            Err(e) => die_artifact(&format!("sequential reference run failed: {e}")),
        }
    } else {
        // The merged run recorded failures; the all-or-nothing
        // sequential entry point would abort on the first, so compare
        // against the fault-tolerant run (bit-identical to sequential on
        // the surviving cells).
        sweep.run_partial()
    };

    let mut mismatches = Vec::new();
    if merged.report != reference.report {
        mismatches.push("report values differ".to_owned());
    }
    let merged_json = merged.report.render(ReportFormat::Json);
    let reference_json = reference.report.render(ReportFormat::Json);
    if merged_json != reference_json {
        mismatches.push("serialized report bytes differ".to_owned());
    }
    let merged_errors: Vec<String> = merged.errors.iter().map(ToString::to_string).collect();
    let reference_errors: Vec<String> = reference.errors.iter().map(ToString::to_string).collect();
    if merged_errors != reference_errors {
        mismatches.push(format!(
            "failure lists differ ({} merged vs {} sequential)",
            merged_errors.len(),
            reference_errors.len()
        ));
    }
    if mismatches.is_empty() {
        println!(
            "[verified: merged report is bit-identical to the sequential reference \
             ({} curves, {} outcomes, {} failures)]",
            merged.report.distributions.len(),
            merged.report.outcomes.len(),
            merged.errors.len()
        );
    } else {
        eprintln!("verification FAILED: {}", mismatches.join("; "));
        exit(1);
    }
}
