//! Multi-process sharded sweep driver with heal-and-resume support.
//!
//! `shard_runner run` evaluates one shard of a fixed experiment grid and
//! writes a mergeable JSON artifact; `shard_runner merge` reassembles
//! any complete set of such artifacts into the full report and can
//! verify the result against an in-process sequential run;
//! `shard_runner reissue` re-runs exactly the cells a shard set failed
//! to deliver (failed outcomes and lost shards alike) and writes a
//! **heal artifact** that `merge` accepts as a complement — so a
//! partially-failed grid is healed cell-by-cell instead of re-run from
//! scratch. This is how the CI matrix splits the experiment grid over
//! four runners (on the fast `small` corpus; pass `--standard` for the
//! 795-loop population), proves the merged report **bit-identical** to
//! an unsharded `Sweep::run_sequential`, and — in the `heal-verify`
//! job — proves the same for a run with deliberately injected per-cell
//! failures after healing.
//!
//! ```text
//! shard_runner run --shard <i>/<n> [--out FILE.json] [--grid GRID] [--standard]
//!                  [--take N] [--persist-trajectories] [--inject-fail T1,T2,..]
//! shard_runner merge [--verify-against-sequential] [--out FILE.json]
//!                    [--out-artifact FILE.json] FILE.json...
//! shard_runner reissue --from FILE.json... --out HEAL.json [--persist-trajectories]
//! ```
//!
//! Grids: `full` (default; Figure 6–9 machines, models, points and
//! budgets in one sweep), `fig67`, `fig89`, `table1`.
//!
//! `--persist-trajectories` records each cell's spill-trajectory
//! checkpoints in the artifact (shard format v3), so a later `reissue`
//! resumes the descents instead of respilling from zero; `--inject-fail`
//! marks the named grid cells failed without evaluating them (the
//! deliberate-failure half of the heal CI gate; indices outside the
//! runner's shard are ignored, so every runner of a matrix can take the
//! same list).
//!
//! Exit codes: `0` success, `1` verification mismatch, `2` usage or
//! configuration error, `3` unreadable/corrupt/incompatible artifact.

use ncdrf::corpus::Corpus;
use ncdrf::machine::Machine;
use ncdrf::{
    default_points, parse_sweep_shard, GridSignature, Model, PartialSweep, PipelineOptions, Render,
    ReportFormat, Sweep, SweepShard, TABLE1_POINTS,
};
use ncdrf_experiments::parse_shard_spec;
use std::process::exit;

const USAGE: &str = "usage:
  shard_runner run --shard <i>/<n> [--out FILE.json] [--grid full|fig67|fig89|table1] [--standard]
                   [--take N] [--persist-trajectories] [--inject-fail T1,T2,..]
  shard_runner merge [--verify-against-sequential] [--out FILE.json] [--out-artifact FILE.json] FILE.json...
  shard_runner reissue --from FILE.json... --out HEAL.json [--persist-trajectories]
exit codes: 0 ok, 1 verification mismatch, 2 usage error, 3 bad artifact";

/// Usage / configuration error: exit 2.
fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    exit(2);
}

/// Unreadable, corrupt or incompatible artifact: exit 3. Distinct from
/// usage errors so a scheduler retrying shards can tell "operator typo"
/// from "re-fetch / re-run this artifact".
fn die_artifact(message: &str) -> ! {
    eprintln!("error: {message}");
    exit(3);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("merge") => merge(&args[1..]),
        Some("reissue") => reissue(&args[1..]),
        Some(other) => die(&format!("unknown subcommand `{other}`")),
        None => die("missing subcommand"),
    }
}

/// Value of `--flag <value>`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| match args.get(i + 1) {
            Some(v) => v.as_str(),
            None => die(&format!("`{flag}` needs a value")),
        })
}

/// Builds the named experiment grid over `corpus`. The grid must be
/// identical in every `run` invocation being merged — it is pinned here,
/// not on the command line, so two runners can only disagree by naming
/// different presets, which the merge's signature check catches.
fn build_sweep<'c>(corpus: &'c Corpus, grid: &str) -> Sweep<'c> {
    match grid {
        "full" => Sweep::new(corpus)
            .clustered_latencies([3, 6])
            .models(Model::all())
            .points(default_points())
            .budgets([32, 64]),
        "fig67" => Sweep::new(corpus)
            .clustered_latencies([3, 6])
            .models(Model::finite())
            .points(default_points()),
        "fig89" => Sweep::new(corpus)
            .clustered_latencies([3, 6])
            .models(Model::all())
            .budgets([32, 64]),
        "table1" => Sweep::new(corpus)
            .pxly_configs([(1, 3), (2, 3), (1, 6), (2, 6)])
            .models([Model::Unified])
            .points(TABLE1_POINTS),
        other => die(&format!("unknown grid `{other}`")),
    }
}

/// Writes `contents` to `path`, creating parent directories.
fn write_file(path: &str, contents: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("create `{path}`: {e}")));
        }
    }
    std::fs::write(path, contents).unwrap_or_else(|e| die(&format!("write `{path}`: {e}")));
    println!("[wrote {path}]");
}

fn run(args: &[String]) {
    let (index, count) = match flag_value(args, "--shard") {
        Some(spec) => parse_shard_spec(spec).unwrap_or_else(|e| die(&e)),
        None => die("`run` needs `--shard <i>/<n>`"),
    };
    let grid = flag_value(args, "--grid").unwrap_or("full");
    let mut corpus = if args.iter().any(|a| a == "--standard") {
        Corpus::standard()
    } else {
        Corpus::small()
    };
    if let Some(n) = flag_value(args, "--take") {
        let n: usize = n
            .parse()
            .unwrap_or_else(|_| die(&format!("`--take` needs a count, got `{n}`")));
        corpus = corpus.take(n);
    }
    let faults: Vec<u64> = match flag_value(args, "--inject-fail") {
        None => Vec::new(),
        Some(list) => list
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .unwrap_or_else(|_| die(&format!("`--inject-fail` holds a non-index: `{t}`")))
            })
            .collect(),
    };
    let out = flag_value(args, "--out")
        .map(str::to_owned)
        .unwrap_or_else(|| format!("shard-{index}-of-{count}.json"));

    let sweep = build_sweep(&corpus, grid)
        .persist_trajectories(args.iter().any(|a| a == "--persist-trajectories"));
    let shard = sweep
        .shard_with_faults(index, count, &faults)
        .unwrap_or_else(|e| die(&e.to_string()));
    print!("{}", shard.render(ReportFormat::Text));
    if !faults.is_empty() {
        println!("[injected {} cell failure(s)]", shard.failure_count());
    }
    write_file(&out, &shard.render(ReportFormat::Json));
}

fn read_shards(files: &[&str]) -> Vec<SweepShard> {
    files
        .iter()
        .map(|f| {
            let json = std::fs::read_to_string(f)
                .unwrap_or_else(|e| die_artifact(&format!("read `{f}`: {e}")));
            parse_sweep_shard(&json).unwrap_or_else(|e| die_artifact(&format!("parse `{f}`: {e}")))
        })
        .collect()
}

/// The positional (non-flag) arguments: `value_flags` consume the
/// following argument, `bool_flags` stand alone, anything else starting
/// with `--` is a usage error.
fn positional_args<'a>(
    args: &'a [String],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Vec<&'a str> {
    let mut files = Vec::new();
    let mut skip = false;
    for a in args.iter() {
        if skip {
            skip = false;
            continue;
        }
        match a.as_str() {
            flag if value_flags.contains(&flag) => skip = true,
            flag if bool_flags.contains(&flag) => {}
            flag if flag.starts_with("--") => die(&format!("unknown flag `{flag}`")),
            file => files.push(file),
        }
    }
    files
}

fn merge(args: &[String]) {
    let verify = args.iter().any(|a| a == "--verify-against-sequential");
    let out = flag_value(args, "--out");
    let out_artifact = flag_value(args, "--out-artifact");
    let files = positional_args(
        args,
        &["--out", "--out-artifact"],
        &["--verify-against-sequential"],
    );
    if files.is_empty() {
        die("`merge` needs at least one shard file");
    }

    let shards = read_shards(&files);
    println!(
        "[merging {} artifact(s) covering {} grid cells]",
        shards.len(),
        shards.iter().map(SweepShard::cell_count).sum::<usize>()
    );
    let merged = SweepShard::merge(&shards).unwrap_or_else(|e| die_artifact(&e.to_string()));
    print!("{}", merged.render(ReportFormat::Text));
    if let Some(path) = out {
        write_file(path, &merged.render(ReportFormat::Json));
    }
    if let Some(path) = out_artifact {
        // The consolidated cell-level artifact: one 1/1 shard carrying
        // every resolved cell (and its persisted trajectories), usable
        // both as a future merge input and as `reissue --from`.
        let consolidated =
            SweepShard::consolidate(&shards).unwrap_or_else(|e| die_artifact(&e.to_string()));
        write_file(path, &consolidated.render(ReportFormat::Json));
    }
    if verify {
        verify_against_sequential(&merged, shards[0].signature());
    }
}

fn reissue(args: &[String]) {
    let persist = args.iter().any(|a| a == "--persist-trajectories");
    let out = flag_value(args, "--out").unwrap_or("heal.json");
    let files = positional_args(args, &["--out"], &["--from", "--persist-trajectories"]);
    if files.is_empty() {
        die("`reissue` needs `--from FILE.json...`");
    }

    let shards = read_shards(&files);
    let missing = SweepShard::unresolved(&shards).unwrap_or_else(|e| die_artifact(&e.to_string()));
    let sig = shards[0].signature();
    println!(
        "[{} of {} grid cells failed or missing]",
        missing.len(),
        sig.total_tasks()
    );

    let (corpus, machines) = rebuild_grid(sig);
    let sweep = Sweep::new(&corpus)
        .machines(machines)
        .models(sig.models.iter().copied())
        .points(sig.points.iter().copied())
        .budgets(sig.budgets.iter().copied())
        .persist_trajectories(persist);
    let heal = sweep
        .reissue(&missing, &shards)
        .unwrap_or_else(|e| die_artifact(&e.to_string()));
    print!("{}", heal.render(ReportFormat::Text));
    write_file(out, &heal.render(ReportFormat::Json));
}

/// Rebuilds the corpus and machine grid a signature names, refusing
/// silently-different grids; exits 3 when this build cannot reproduce
/// them.
fn rebuild_grid(sig: &GridSignature) -> (Corpus, Vec<Machine>) {
    let corpus = rebuild_corpus(sig).unwrap_or_else(|e| die_artifact(&e));
    let machines: Vec<Machine> = sig
        .machines
        .iter()
        .map(|m| {
            let machine = machine_from_name(&m.name)
                .unwrap_or_else(|| die_artifact(&format!("cannot rebuild machine `{}`", m.name)));
            // The name alone does not pin the datapath (it omits e.g.
            // load/store units per cluster), so cross-check the rebuilt
            // machine against the signature instead of letting a
            // name-colliding variant masquerade as a verification
            // failure.
            let latency = machine
                .groups()
                .iter()
                .map(|g| g.latency)
                .max()
                .unwrap_or(0);
            let ports = machine.memory_ports() as u32;
            if latency != m.latency || ports != m.ports {
                die_artifact(&format!(
                    "cannot rebuild machine `{}`: this build reconstructs latency {latency} / \
                     {ports} ports, the shards declare latency {} / {} ports",
                    m.name, m.latency, m.ports
                ));
            }
            machine
        })
        .collect();
    if sig.options != format!("{:?}", PipelineOptions::default()) {
        die_artifact(
            "the shards were produced with non-default pipeline options; cannot rebuild the grid",
        );
    }
    (corpus, machines)
}

/// Recomputes the merged grid sequentially in this process and asserts
/// the merged report is bit-identical (value equality *and* identical
/// serialized bytes). Exits `1` on mismatch.
fn verify_against_sequential(merged: &PartialSweep, sig: &GridSignature) {
    let (corpus, machines) = rebuild_grid(sig);
    let sweep = Sweep::new(&corpus)
        .machines(machines)
        .models(sig.models.iter().copied())
        .points(sig.points.iter().copied())
        .budgets(sig.budgets.iter().copied());

    let reference = if merged.is_complete() {
        match sweep.run_sequential() {
            Ok(report) => PartialSweep {
                report,
                errors: Vec::new(),
            },
            Err(e) => die_artifact(&format!("sequential reference run failed: {e}")),
        }
    } else {
        // The merged run recorded failures; the all-or-nothing
        // sequential entry point would abort on the first, so compare
        // against the fault-tolerant run (bit-identical to sequential on
        // the surviving cells).
        sweep.run_partial()
    };

    let mut mismatches = Vec::new();
    if merged.report != reference.report {
        mismatches.push("report values differ".to_owned());
    }
    let merged_json = merged.report.render(ReportFormat::Json);
    let reference_json = reference.report.render(ReportFormat::Json);
    if merged_json != reference_json {
        mismatches.push("serialized report bytes differ".to_owned());
    }
    let merged_errors: Vec<String> = merged.errors.iter().map(ToString::to_string).collect();
    let reference_errors: Vec<String> = reference.errors.iter().map(ToString::to_string).collect();
    if merged_errors != reference_errors {
        mismatches.push(format!(
            "failure lists differ ({} merged vs {} sequential)",
            merged_errors.len(),
            reference_errors.len()
        ));
    }
    if mismatches.is_empty() {
        println!(
            "[verified: merged report is bit-identical to the sequential reference \
             ({} curves, {} outcomes, {} failures)]",
            merged.report.distributions.len(),
            merged.report.outcomes.len(),
            merged.errors.len()
        );
    } else {
        eprintln!("verification FAILED: {}", mismatches.join("; "));
        exit(1);
    }
}

/// Rebuilds the corpus a signature names, refusing silently-different
/// grids (the loop list must match this build exactly). `--take`
/// subsets serialize as `<base>-take<N>` and rebuild the same way.
fn rebuild_corpus(sig: &GridSignature) -> Result<Corpus, String> {
    let base = |name: &str| match name {
        "small" => Some(Corpus::small()),
        "standard" => Some(Corpus::standard()),
        _ => None,
    };
    let corpus = base(&sig.corpus).or_else(|| {
        let (stem, n) = sig.corpus.rsplit_once("-take")?;
        Some(base(stem)?.take(n.parse().ok()?))
    });
    let Some(corpus) = corpus else {
        return Err(format!(
            "cannot rebuild corpus `{}` (only `small`/`standard` and their -takeN subsets are \
             reproducible here); merge without --verify-against-sequential",
            sig.corpus
        ));
    };
    let matches = corpus.len() == sig.loops.len()
        && corpus
            .iter()
            .zip(&sig.loops)
            .all(|(l, name)| l.name() == name);
    if !matches {
        return Err(format!(
            "the shards' `{}` corpus has a different loop list than this build",
            sig.corpus
        ));
    }
    Ok(corpus)
}

/// Rebuilds a preset machine from its name (`C2L<lat>` clustered,
/// `P<x>L<lat>` unified) — the only machines `shard_runner run` emits.
fn machine_from_name(name: &str) -> Option<Machine> {
    if let Some(lat) = name.strip_prefix("C2L").and_then(|s| s.parse().ok()) {
        return Some(Machine::clustered(lat, 1));
    }
    let rest = name.strip_prefix('P')?;
    let (x, lat) = rest.split_once('L')?;
    Some(Machine::pxly(x.parse().ok()?, lat.parse().ok()?))
}
