//! Shared plumbing for the experiment binaries (one per paper
//! table/figure).
//!
//! Every binary accepts:
//!
//! * `--standard` — run on the full 795-loop corpus (minutes in release
//!   mode); the default is the fast `small` corpus (~100 loops), which
//!   already reproduces every qualitative shape;
//! * `--out <dir>` — where to write CSV results (default `results/`).

use ncdrf::corpus::Corpus;
use std::path::PathBuf;

/// Parsed common command-line options.
#[derive(Debug, Clone)]
pub struct Cli {
    /// The selected corpus.
    pub corpus: Corpus,
    /// Output directory for CSV files.
    pub out: PathBuf,
}

impl Cli {
    /// Parses `std::env::args`.
    pub fn parse() -> Cli {
        let args: Vec<String> = std::env::args().collect();
        let corpus = if args.iter().any(|a| a == "--standard") {
            Corpus::standard()
        } else {
            Corpus::small()
        };
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results"));
        Cli { corpus, out }
    }

    /// Writes `contents` to `<out>/<name>`, creating the directory.
    ///
    /// # Panics
    ///
    /// Panics if the filesystem refuses (experiments want loud failures).
    pub fn write(&self, name: &str, contents: &str) {
        std::fs::create_dir_all(&self.out).expect("create results dir");
        let path = self.out.join(name);
        std::fs::write(&path, contents).expect("write results file");
        println!("[wrote {}]", path.display());
    }
}

/// Banner line identifying a run.
pub fn banner(what: &str, cli: &Cli) {
    println!(
        "=== {what} — corpus `{}` ({} loops) ===\n",
        cli.corpus.name(),
        cli.corpus.len()
    );
}
