//! Shared plumbing for the experiment binaries (one per paper
//! table/figure).
//!
//! Every binary accepts:
//!
//! * `--standard` — run on the full 795-loop corpus (minutes in release
//!   mode); the default is the fast `small` corpus (~100 loops), which
//!   already reproduces every qualitative shape;
//! * `--out <dir>` — where to write CSV results (default `results/`);
//! * `--shard <i>/<n>` — evaluate only shard `i` of `n` of the figure's
//!   `(machine, loop)` grid and write a mergeable JSON artifact instead
//!   of rendering the figure (see [`run_or_shard`] and the `shard_runner`
//!   binary, which merges such artifacts and can verify them against an
//!   unsharded sequential run).

use ncdrf::corpus::Corpus;
use ncdrf::{PartialSweep, Render, ReportFormat, Sweep};
use std::path::PathBuf;

/// Parsed common command-line options.
#[derive(Debug, Clone)]
pub struct Cli {
    /// The selected corpus.
    pub corpus: Corpus,
    /// Output directory for CSV results (default `results/`).
    pub out: PathBuf,
    /// `--shard i/n`: run only that shard of the experiment grid.
    pub shard: Option<(u32, u32)>,
}

/// Parses `"i/n"` into a shard spec.
///
/// # Errors
///
/// A usage message when the spec is not `index/count`.
pub fn parse_shard_spec(spec: &str) -> Result<(u32, u32), String> {
    let usage = || format!("invalid shard spec `{spec}`; expected `<index>/<count>`, e.g. `0/4`");
    let (i, n) = spec.split_once('/').ok_or_else(usage)?;
    Ok((
        i.trim().parse().map_err(|_| usage())?,
        n.trim().parse().map_err(|_| usage())?,
    ))
}

impl Cli {
    /// Parses `std::env::args`, exiting with a usage message on a
    /// malformed `--shard` spec.
    pub fn parse() -> Cli {
        let args: Vec<String> = std::env::args().collect();
        let corpus = if args.iter().any(|a| a == "--standard") {
            Corpus::standard()
        } else {
            Corpus::small()
        };
        let flag_value = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
        };
        let out = flag_value("--out")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results"));
        let shard = flag_value("--shard").map(|spec| {
            parse_shard_spec(spec).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            })
        });
        Cli { corpus, out, shard }
    }

    /// Writes `contents` to `<out>/<name>`, creating the directory.
    ///
    /// # Panics
    ///
    /// Panics if the filesystem refuses (experiments want loud failures).
    pub fn write(&self, name: &str, contents: &str) {
        std::fs::create_dir_all(&self.out).expect("create results dir");
        let path = self.out.join(name);
        std::fs::write(&path, contents).expect("write results file");
        println!("[wrote {}]", path.display());
    }
}

/// Banner line identifying a run.
pub fn banner(what: &str, cli: &Cli) {
    println!(
        "=== {what} — corpus `{}` ({} loops) ===\n",
        cli.corpus.name(),
        cli.corpus.len()
    );
}

/// Runs `sweep` the way the CLI asked: fault-tolerantly in-process
/// (returns the partial result; skipped pairs already reported on
/// stderr), or — under `--shard i/n` — evaluates only that shard, writes
/// `<stem>.shard-<i>-of-<n>.json` to the output directory and returns
/// `None` (the caller renders nothing; `shard_runner merge` reassembles
/// the figure from all `n` artifacts).
pub fn run_or_shard(cli: &Cli, sweep: &Sweep<'_>, stem: &str) -> Option<PartialSweep> {
    match cli.shard {
        None => {
            let partial = sweep.run_partial();
            for e in &partial.errors {
                eprintln!("[skipped] {e}");
            }
            Some(partial)
        }
        Some((index, count)) => {
            let shard = sweep.shard(index, count).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            });
            println!("{}", shard.render(ReportFormat::Text));
            cli.write(
                &format!("{stem}.shard-{index}-of-{count}.json"),
                &shard.render(ReportFormat::Json),
            );
            None
        }
    }
}
