//! The worker side of the lease protocol: the offer a worker pulls
//! from the farm, its wire round-trip, and the evaluation that turns an
//! offer into a delivered shard artifact.
//!
//! Nested payloads (the grid signature, seed artifacts) travel as
//! JSON-encoded strings inside the offer, so both sides reuse the
//! core renderers/parsers verbatim and the bytes stay exact — the
//! vendored JSON stand-in parses integers exactly and never re-renders
//! floats.

use crate::json::{json_array, json_escape, u64_array, JsonObject};
use ncdrf::{GridSignature, Provenance, Render, ReportFormat, Sweep, SweepShard};
use ncdrf_exec::Pool;
use std::sync::Arc;

/// One unit of leased work: which cells of which grid to evaluate,
/// which of them to fail deliberately, and any resume-compatible seed
/// artifacts whose persisted trajectories warm-start the descents.
#[derive(Debug, Clone)]
pub struct LeaseOffer {
    /// Lease id — quoted back on delivery.
    pub lease: u64,
    /// The job the cells belong to.
    pub job: String,
    /// Linear task indices to evaluate.
    pub tasks: Vec<u64>,
    /// Subset of `tasks` to fail deliberately (fault injection).
    pub faults: Vec<u64>,
    /// Persist spill trajectories into the artifact.
    pub persist: bool,
    /// Farm-clock millisecond deadline; past it the lease may requeue.
    pub deadline: u64,
    /// The grid to rebuild the sweep from.
    pub signature: GridSignature,
    /// Prior complete artifacts this grid resumes from.
    pub seeds: Vec<SweepShard>,
}

impl LeaseOffer {
    /// Renders the offer for the wire.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.integer("lease", u128::from(self.lease));
        o.string("job", &self.job);
        o.raw("tasks", &u64_array(&self.tasks));
        o.raw("faults", &u64_array(&self.faults));
        o.boolean("persist", self.persist);
        o.integer("deadline", u128::from(self.deadline));
        o.string("signature", &ncdrf::render_grid_signature(&self.signature));
        o.raw(
            "seeds",
            &json_array(
                self.seeds
                    .iter()
                    .map(|s| format!("\"{}\"", json_escape(&s.render(ReportFormat::Json)))),
            ),
        );
        o.finish()
    }

    /// Parses an offer off the wire.
    ///
    /// # Errors
    ///
    /// A message naming the malformed member.
    pub fn from_json(body: &str) -> Result<LeaseOffer, String> {
        let v = serde_json::from_str(body).map_err(|e| format!("offer: {e}"))?;
        let u64s = |key: &str| -> Result<Vec<u64>, String> {
            v.get(key)
                .and_then(|a| a.as_array())
                .ok_or_else(|| format!("offer: `{key}` is not an array"))?
                .iter()
                .map(|i| {
                    i.as_u64()
                        .ok_or_else(|| format!("offer: `{key}` holds a non-index entry"))
                })
                .collect()
        };
        let signature = v
            .get("signature")
            .and_then(|s| s.as_str())
            .ok_or_else(|| "offer: `signature` is not a string".to_owned())?;
        let signature =
            ncdrf::parse_grid_signature(signature).map_err(|e| format!("offer signature: {e}"))?;
        let seeds = v
            .get("seeds")
            .and_then(|a| a.as_array())
            .ok_or_else(|| "offer: `seeds` is not an array".to_owned())?
            .iter()
            .map(|s| {
                let text = s
                    .as_str()
                    .ok_or_else(|| "offer: `seeds` holds a non-string entry".to_owned())?;
                ncdrf::parse_sweep_shard(text).map_err(|e| format!("offer seed: {e}"))
            })
            .collect::<Result<Vec<SweepShard>, String>>()?;
        Ok(LeaseOffer {
            lease: v
                .get("lease")
                .and_then(|n| n.as_u64())
                .ok_or_else(|| "offer: `lease` is not an id".to_owned())?,
            job: v
                .get("job")
                .and_then(|s| s.as_str())
                .ok_or_else(|| "offer: `job` is not a string".to_owned())?
                .to_owned(),
            tasks: u64s("tasks")?,
            faults: u64s("faults")?,
            persist: v
                .get("persist")
                .and_then(|b| b.as_bool())
                .ok_or_else(|| "offer: `persist` is not a boolean".to_owned())?,
            deadline: v
                .get("deadline")
                .and_then(|n| n.as_u64())
                .ok_or_else(|| "offer: `deadline` is not a count".to_owned())?,
            signature,
            seeds,
        })
    }
}

/// Evaluates a lease: rebuilds the sweep from the offer's grid
/// signature, evaluates exactly the leased cells (injecting the
/// requested faults, importing any seed trajectories) and stamps the
/// resulting artifact with the job/lease provenance.
///
/// # Errors
///
/// A message when the signature cannot be rebuilt (foreign corpus or
/// machine) or the cells cannot be issued.
pub fn evaluate_lease(offer: &LeaseOffer, pool: Option<Arc<Pool>>) -> Result<SweepShard, String> {
    let (corpus, machines) = ncdrf::rebuild_grid(&offer.signature).map_err(|e| e.to_string())?;
    let mut sweep: Sweep<'_> = ncdrf::sweep_for_signature(&offer.signature, &corpus, machines)
        .persist_trajectories(offer.persist);
    if let Some(pool) = pool {
        sweep = sweep.pool(pool);
    }
    let shard = sweep
        .issue_cells(&offer.tasks, &offer.faults, &offer.seeds)
        .map_err(|e| e.to_string())?;
    Ok(shard.with_provenance(Provenance {
        job: offer.job.clone(),
        lease: offer.lease,
    }))
}

/// Milliseconds since the Unix epoch — the daemon's wall clock, read
/// through the injected-clock abstraction ([`crate::clock::Clock`]).
/// The farm itself never reads a clock; callers pass this in. External
/// workers that poll a remote farm use this convenience; anything that
/// should be testable with steered time takes a `Clock` instead.
pub fn now_millis() -> u64 {
    crate::clock::Clock::System.now_ms()
}
