//! Minimal JSON emission for the farm's wire format. The vendored
//! `serde_json` stand-in is a parser only, so responses are written by
//! hand — the same approach (and emitter shape) as the core report
//! module, kept local because the farm's payloads are tiny.

use std::fmt::Write as _;

/// Incremental `{...}` writer.
pub(crate) struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    pub(crate) fn new() -> JsonObject {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{}\":", json_escape(key));
    }

    pub(crate) fn string(&mut self, key: &str, value: &str) {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", json_escape(value));
    }

    pub(crate) fn integer(&mut self, key: &str, value: u128) {
        self.key(key);
        let _ = write!(self.buf, "{value}");
    }

    pub(crate) fn boolean(&mut self, key: &str, value: bool) {
        self.key(key);
        let _ = write!(self.buf, "{value}");
    }

    /// Inserts already-serialized JSON under `key`.
    pub(crate) fn raw(&mut self, key: &str, json: &str) {
        self.key(key);
        self.buf.push_str(json);
    }

    pub(crate) fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// `[...]` of already-serialized items.
pub(crate) fn json_array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

/// `[...]` of integers.
pub(crate) fn u64_array(items: &[u64]) -> String {
    json_array(items.iter().map(|v| v.to_string()))
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A `{"error": "..."}` body.
pub(crate) fn error_body(message: &str) -> String {
    let mut o = JsonObject::new();
    o.string("error", message);
    o.finish()
}
