//! The daemon's injected wall clock.
//!
//! The farm state machine owns no clock — every [`crate::Farm`] method
//! takes `now` explicitly. This module is where the *daemon shell*
//! (HTTP server, tick loop, local backend) gets those timestamps from:
//! a [`Clock`] value that is either the system clock or a
//! manually-advanced counter. Tests and model-checker scenarios inject
//! a [`Clock::manual`] and drive lease expiry deterministically; the
//! production daemon injects [`Clock::System`].
//!
//! The one `SystemTime::now` call of the whole workspace's non-bench
//! code lives here (see `clippy.toml` and the `ncdrf-lint` wall-clock
//! rule, which allowlist exactly this file).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// A source of farm-protocol timestamps (milliseconds since the Unix
/// epoch for [`Clock::System`]; an arbitrary monotone counter for
/// manual clocks). Cloning is cheap and clones of a manual clock share
/// the same underlying counter.
#[derive(Debug, Clone, Default)]
pub enum Clock {
    /// The system wall clock.
    #[default]
    System,
    /// A manually-advanced clock for tests and model scenarios.
    Manual(Arc<AtomicU64>),
}

impl Clock {
    /// A manual clock starting at `start_ms`.
    pub fn manual(start_ms: u64) -> Clock {
        Clock::Manual(Arc::new(AtomicU64::new(start_ms)))
    }

    /// The current reading in milliseconds.
    pub fn now_ms(&self) -> u64 {
        match self {
            Clock::System => system_now_ms(),
            Clock::Manual(ms) => ms.load(Ordering::SeqCst),
        }
    }

    /// Advances a manual clock by `ms`, returning the new reading.
    ///
    /// # Panics
    ///
    /// On [`Clock::System`] — wall time cannot be steered.
    pub fn advance(&self, ms: u64) -> u64 {
        match self {
            Clock::System => panic!("cannot advance the system clock"),
            Clock::Manual(counter) => counter.fetch_add(ms, Ordering::SeqCst) + ms,
        }
    }
}

/// Milliseconds since the Unix epoch. The workspace's one sanctioned
/// wall-clock read outside benches/profilers; everything else injects a
/// [`Clock`].
#[allow(clippy::disallowed_methods)]
fn system_now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_steerable_and_shared() {
        let clock = Clock::manual(1_000);
        let peer = clock.clone();
        assert_eq!(clock.now_ms(), 1_000);
        assert_eq!(clock.advance(500), 1_500);
        assert_eq!(peer.now_ms(), 1_500, "clones share the counter");
    }

    #[test]
    fn system_clock_reads_something_epoch_like() {
        // 2020-01-01 in ms — anything earlier means the read is broken.
        assert!(Clock::System.now_ms() > 1_577_836_800_000);
    }

    #[test]
    #[should_panic(expected = "cannot advance the system clock")]
    fn system_clock_refuses_to_advance() {
        let _ = Clock::System.advance(1);
    }
}
