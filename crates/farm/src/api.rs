//! The farm's HTTP API as a pure function: `(method, path, body, now)`
//! in, `(status, body)` out. The TCP server in [`crate::http`] is a
//! thin shell around [`route`], so every endpoint — success and error
//! paths alike — is testable without opening a socket.
//!
//! | Endpoint | Verb | Reply |
//! |---|---|---|
//! | `/jobs` | POST | `202` receipt — submit a job spec |
//! | `/jobs` | GET | `200` array of job statuses |
//! | `/jobs/<id>` | GET | `200` status, `404` unknown |
//! | `/jobs/<id>/report` | GET | `200` merged report, `409` not ready |
//! | `/leases` | POST | `200` lease offer, `204` no pending work |
//! | `/leases/<id>/artifact` | POST | `200` receipt — deliver a shard |
//! | `/farm` | GET | `200` farm-wide counters |
//!
//! Refusals are `{"error": "..."}` with the status from
//! [`FarmError::http_status`]: 400 malformed, 404 unknown id, 409 not
//! ready, 413 oversized grid, 422 certification rejected the delivered
//! artifact (certify-mode farms only), 429 queue full.

use crate::farm::{Farm, FarmError, JobStatus};
use crate::json::{error_body, json_array, JsonObject};
use ncdrf::CacheStats;

fn scheduling_json(stats: &CacheStats) -> String {
    let mut o = JsonObject::new();
    o.integer("hits", u128::from(stats.hits));
    o.integer("misses", u128::from(stats.misses));
    o.integer("traj_hits", u128::from(stats.traj_hits));
    o.integer("traj_resumes", u128::from(stats.traj_resumes));
    o.integer("spill_steps", u128::from(stats.spill_steps));
    o.finish()
}

fn status_json(s: &JobStatus) -> String {
    let mut o = JsonObject::new();
    o.string("job", &s.job);
    o.string("state", s.state.name());
    o.integer("cells", s.cells as u128);
    o.integer("resolved", s.resolved as u128);
    o.integer("failed", s.failed as u128);
    o.integer("pending", s.pending as u128);
    o.integer("leased", s.leased as u128);
    o.integer("heal_rounds", u128::from(s.heal_rounds));
    o.boolean("from_cache", s.from_cache);
    if let Some(stats) = &s.scheduling {
        o.raw("scheduling", &scheduling_json(stats));
    }
    o.finish()
}

fn refuse(e: &FarmError) -> (u16, String) {
    (e.http_status(), error_body(&e.to_string()))
}

/// Dispatches one request against the farm. Unknown paths return 404,
/// wrong verbs on known paths 405.
pub fn route(farm: &Farm, method: &str, path: &str, body: &str, now: u64) -> (u16, String) {
    let segments: Vec<&str> = path.trim_matches('/').split('/').collect();
    match (method, segments.as_slice()) {
        ("POST", ["jobs"]) => match farm.submit(body, now) {
            Ok(r) => {
                let mut o = JsonObject::new();
                o.string("job", &r.job);
                o.integer("cells", r.cells as u128);
                o.string("state", r.state.name());
                (202, o.finish())
            }
            Err(e) => refuse(&e),
        },
        ("GET", ["jobs"]) => (200, json_array(farm.jobs().iter().map(status_json))),
        ("GET", ["jobs", id]) => match farm.status(id) {
            Ok(s) => (200, status_json(&s)),
            Err(e) => refuse(&e),
        },
        ("GET", ["jobs", id, "report"]) => match farm.report(id) {
            Ok(report) => (200, report),
            Err(e) => refuse(&e),
        },
        ("POST", ["leases"]) => match farm.claim(body.trim(), now) {
            Some(offer) => (200, offer.to_json()),
            None => (204, String::new()),
        },
        ("POST", ["leases", id, "artifact"]) => {
            let Ok(lease_id) = id.parse::<u64>() else {
                return (404, error_body(&format!("unknown lease `{id}`")));
            };
            let artifact = match ncdrf::parse_sweep_shard(body) {
                Ok(a) => a,
                Err(e) => return (400, error_body(&format!("artifact: {e}"))),
            };
            match farm.deliver(lease_id, artifact, now) {
                Ok(r) => {
                    let mut o = JsonObject::new();
                    o.string("job", &r.job);
                    o.integer("resolved", r.resolved as u128);
                    o.integer("unresolved", r.unresolved as u128);
                    o.boolean("complete", r.complete);
                    (200, o.finish())
                }
                Err(e) => refuse(&e),
            }
        }
        ("GET", ["farm"]) => {
            let (jobs, unfinished, leases, cached) = farm.stats();
            let mut o = JsonObject::new();
            o.integer("jobs", jobs as u128);
            o.integer("unfinished", unfinished as u128);
            o.integer("live_leases", leases as u128);
            o.integer("cached_grids", cached as u128);
            o.integer("queue_cap", farm.config().queue_cap as u128);
            o.integer("max_cells", farm.config().max_cells as u128);
            (200, o.finish())
        }
        (_, ["jobs" | "leases" | "farm", ..]) => (
            405,
            error_body(&format!("{method} is not supported on {path}")),
        ),
        _ => (404, error_body(&format!("no such endpoint: {path}"))),
    }
}
