//! A deliberately small HTTP/1.1 shell over [`crate::api::route`],
//! built on `std::net` only: thread-per-connection server, one-request
//! `Connection: close` semantics, plus the matching blocking client the
//! worker loop and the tests use. Enough protocol for `curl` and for
//! the farm's own workers — not a general web server.

use crate::api::route;
use crate::clock::Clock;
use crate::farm::Farm;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Largest request body the server will read (a delivered artifact for
/// a sizeable lease stays far below this).
const MAX_BODY: usize = 256 * 1024 * 1024;

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    }
}

fn respond(stream: &mut TcpStream, status: u16, body: &str) {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn handle(farm: &Farm, clock: &Clock, stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    // A connection whose handle cannot be duplicated (fd exhaustion,
    // races with peer resets) is dropped, never a daemon panic.
    let Ok(read_half) = stream.try_clone() else {
        respond(stream, 500, "{\"error\":\"connection unavailable\"}");
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() || request_line.trim().is_empty() {
        return;
    }
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        respond(stream, 400, "{\"error\":\"malformed request line\"}");
        return;
    };
    let (method, path) = (method.to_owned(), path.to_owned());
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).is_err() {
            return;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    if content_length > MAX_BODY {
        respond(stream, 413, "{\"error\":\"request body too large\"}");
        return;
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 && reader.read_exact(&mut body).is_err() {
        return;
    }
    let body = String::from_utf8_lossy(&body).into_owned();
    let (status, reply) = route(farm, &method, &path, &body, clock.now_ms());
    respond(stream, status, &reply);
}

/// A running farm server. Dropping the handle does not stop the
/// accept thread; call [`FarmServer::shutdown`].
pub struct FarmServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
}

impl FarmServer {
    /// The address the server actually bound (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with one last connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// Binds `addr` and serves the farm API with the system clock until
/// [`FarmServer::shutdown`].
///
/// # Errors
///
/// The bind error, stringified.
pub fn serve(farm: Arc<Farm>, addr: &str) -> Result<FarmServer, String> {
    serve_with_clock(farm, addr, Clock::System)
}

/// [`serve`] with an explicit [`Clock`] — tests steer lease deadlines
/// through a manual clock while talking real HTTP.
///
/// # Errors
///
/// The bind error, stringified.
pub fn serve_with_clock(farm: Arc<Farm>, addr: &str, clock: Clock) -> Result<FarmServer, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let accept = thread::spawn(move || {
        for stream in listener.incoming() {
            if stop_flag.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = stream else { continue };
            let farm = Arc::clone(&farm);
            let clock = clock.clone();
            thread::spawn(move || handle(&farm, &clock, &mut stream));
        }
    });
    Ok(FarmServer {
        addr,
        stop,
        accept: Some(accept),
    })
}

/// One blocking HTTP request against a farm server; returns
/// `(status, body)`.
///
/// # Errors
///
/// Connection or protocol failures, stringified.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream
        .write_all(head.as_bytes())
        .map_err(|e| e.to_string())?;
    stream
        .write_all(body.as_bytes())
        .map_err(|e| e.to_string())?;
    stream.flush().map_err(|e| e.to_string())?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| e.to_string())?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line `{}`", status_line.trim()))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| e.to_string())?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| e.to_string())?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}
