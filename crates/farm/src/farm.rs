//! The farm scheduler: a resident job queue over sweep grids, leased
//! out cell-by-cell to workers, healed on a cadence, and served back as
//! merged reports that are bit-identical to `run_sequential`.
//!
//! All methods take the current time as an explicit millisecond
//! parameter — the farm owns no clock — so lease expiry, requeue and
//! heal behaviour are deterministic under test.

use crate::worker::LeaseOffer;
use ncdrf::corpus::Corpus;
use ncdrf::{CacheStats, GridSignature, PartialSweep, Render, ReportFormat, Sweep, SweepShard};
use parking_lot::Mutex;
use serde_json::Value;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::path::PathBuf;

/// Farm sizing and cadence knobs.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Maximum number of unfinished (queued + running) jobs; a submit
    /// beyond it is refused with HTTP 429 — the bounded-queue
    /// backpressure contract.
    pub queue_cap: usize,
    /// Maximum grid cells a single job may declare; beyond it a submit
    /// is refused with HTTP 413.
    pub max_cells: usize,
    /// Lease lifetime in milliseconds: a worker that has not delivered
    /// by `claimed_at + lease_ms` is presumed dead and its cells
    /// requeue on the next tick.
    pub lease_ms: u64,
    /// Maximum grid cells handed out per lease.
    pub lease_cells: usize,
    /// Artifact directory: delivered artifacts are persisted here, the
    /// tick's watcher ingests foreign shard files dropped here, GC
    /// deletes per-lease files once a job's consolidated artifact is
    /// cached, and consolidated artifacts found here at boot pre-seed
    /// the re-merge cache. `None` keeps everything in memory.
    pub artifact_dir: Option<PathBuf>,
    /// Certify every delivered artifact before ingesting it: each
    /// healthy cell is re-evaluated under a certify-mode session (see
    /// [`ncdrf::certify_shard`]) and compared against the artifact's
    /// claims. A delivery carrying a cell the certifier rejects is
    /// refused with HTTP 422 and mutates no queue state — the lease
    /// stays live, the cells stay accounted to it, and an honest
    /// redelivery is still accepted. Off by default: certification
    /// re-runs the lease's cells on the daemon, roughly doubling the
    /// grid's compute.
    pub certify: bool,
}

impl Default for FarmConfig {
    fn default() -> FarmConfig {
        FarmConfig {
            queue_cap: 8,
            max_cells: 65_536,
            lease_ms: 60_000,
            lease_cells: 8,
            artifact_dir: None,
            certify: false,
        }
    }
}

/// Why the farm refused a request. Each variant maps onto one HTTP
/// status, and refusals never mutate queue state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FarmError {
    /// Malformed or unreproducible job spec / artifact (HTTP 400).
    BadRequest(String),
    /// Unknown job or lease id (HTTP 404).
    NotFound(String),
    /// The job's report is not complete yet (HTTP 409).
    NotReady(String),
    /// Certification rejected a delivered artifact: a cell's claimed
    /// results could not be re-derived and certified (HTTP 422). The
    /// message names the first bad cell and the violation.
    CertifyRejected(String),
    /// The job's grid exceeds [`FarmConfig::max_cells`] (HTTP 413).
    Oversized {
        /// Cells the spec declared.
        cells: usize,
        /// The configured ceiling.
        max: usize,
    },
    /// The job queue is full (HTTP 429).
    QueueFull {
        /// The configured queue capacity.
        cap: usize,
    },
}

impl FarmError {
    /// The HTTP status this refusal maps to.
    pub fn http_status(&self) -> u16 {
        match self {
            FarmError::BadRequest(_) => 400,
            FarmError::NotFound(_) => 404,
            FarmError::NotReady(_) => 409,
            FarmError::CertifyRejected(_) => 422,
            FarmError::Oversized { .. } => 413,
            FarmError::QueueFull { .. } => 429,
        }
    }
}

impl fmt::Display for FarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FarmError::BadRequest(m)
            | FarmError::NotFound(m)
            | FarmError::NotReady(m)
            | FarmError::CertifyRejected(m) => {
                write!(f, "{m}")
            }
            FarmError::Oversized { cells, max } => {
                write!(
                    f,
                    "grid declares {cells} cells, the farm accepts at most {max}"
                )
            }
            FarmError::QueueFull { cap } => {
                write!(f, "job queue is full ({cap} unfinished jobs)")
            }
        }
    }
}

impl std::error::Error for FarmError {}

/// A parsed job submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Grid preset name (`full`, `fig67`, `fig89`, `table1`).
    pub grid: String,
    /// Corpus name (`small` or `standard`).
    pub corpus: String,
    /// Optional corpus subset (first `N` loops).
    pub take: Option<usize>,
    /// Optional budget-ladder override (replaces the preset's budgets).
    pub budgets: Option<Vec<u32>>,
    /// Optional model-set override (replaces the preset's models):
    /// registry wire names, resolved through [`ncdrf::ModelRegistry`] at
    /// submit time. A name no registered model carries is refused with
    /// HTTP 400 before any queue state changes.
    pub models: Option<Vec<String>>,
    /// Cells to fail deliberately on the job's *initial* issue; the
    /// heal cadence must recover them. Reissues never re-inject.
    pub inject_fail: Vec<u64>,
    /// Persist spill trajectories into the job's artifacts.
    pub persist: bool,
}

impl JobSpec {
    /// Parses a submit body.
    ///
    /// # Errors
    ///
    /// [`FarmError::BadRequest`] naming the offending member.
    pub fn from_json(body: &str) -> Result<JobSpec, FarmError> {
        let bad = |m: &str| FarmError::BadRequest(m.to_owned());
        let v: Value =
            serde_json::from_str(body).map_err(|e| FarmError::BadRequest(format!("{e}")))?;
        if v.as_object().is_none() {
            return Err(bad("job spec is not a JSON object"));
        }
        let str_or = |key: &str, default: &str| -> Result<String, FarmError> {
            match v.get(key) {
                None => Ok(default.to_owned()),
                Some(s) => s
                    .as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| FarmError::BadRequest(format!("`{key}` is not a string"))),
            }
        };
        let take = match v.get("take") {
            None => None,
            Some(n) => Some(
                n.as_u64()
                    .ok_or_else(|| bad("`take` is not a count"))
                    .map(|n| n as usize)?,
            ),
        };
        let budgets = match v.get("budgets") {
            None => None,
            Some(b) => {
                let items = b
                    .as_array()
                    .ok_or_else(|| bad("`budgets` is not an array"))?;
                if items.is_empty() {
                    return Err(bad("`budgets` is empty"));
                }
                Some(
                    items
                        .iter()
                        .map(|i| {
                            i.as_u32()
                                .ok_or_else(|| bad("`budgets` holds a non-u32 entry"))
                        })
                        .collect::<Result<Vec<u32>, FarmError>>()?,
                )
            }
        };
        let models = match v.get("models") {
            None => None,
            Some(m) => {
                let items = m
                    .as_array()
                    .ok_or_else(|| bad("`models` is not an array"))?;
                if items.is_empty() {
                    return Err(bad("`models` is empty"));
                }
                Some(
                    items
                        .iter()
                        .map(|i| {
                            i.as_str()
                                .map(str::to_owned)
                                .ok_or_else(|| bad("`models` holds a non-string entry"))
                        })
                        .collect::<Result<Vec<String>, FarmError>>()?,
                )
            }
        };
        let inject_fail = match v.get("inject_fail") {
            None => Vec::new(),
            Some(b) => b
                .as_array()
                .ok_or_else(|| bad("`inject_fail` is not an array"))?
                .iter()
                .map(|i| {
                    i.as_u64()
                        .ok_or_else(|| bad("`inject_fail` holds a non-index entry"))
                })
                .collect::<Result<Vec<u64>, FarmError>>()?,
        };
        let persist = match v.get("persist_trajectories") {
            None => false,
            Some(p) => p
                .as_bool()
                .ok_or_else(|| bad("`persist_trajectories` is not a boolean"))?,
        };
        Ok(JobSpec {
            grid: str_or("grid", "full")?,
            corpus: str_or("corpus", "small")?,
            take,
            budgets,
            models,
            inject_fail,
            persist,
        })
    }

    /// Builds the corpus this spec names.
    fn build_corpus(&self) -> Result<Corpus, FarmError> {
        let base = match self.corpus.as_str() {
            "small" => Corpus::small(),
            "standard" => Corpus::standard(),
            other => {
                return Err(FarmError::BadRequest(format!("unknown corpus `{other}`")));
            }
        };
        Ok(match self.take {
            Some(n) => base.take(n),
            None => base,
        })
    }

    /// The signature of the grid this spec names — the job identity the
    /// whole farm (leases, cache, GC) is keyed on.
    ///
    /// # Errors
    ///
    /// [`FarmError::BadRequest`] for unknown presets/corpora, or for a
    /// model-set override naming an unregistered model (the message
    /// carries the offending name).
    pub fn signature(&self) -> Result<GridSignature, FarmError> {
        let corpus = self.build_corpus()?;
        let sweep = ncdrf::preset_sweep(&corpus, &self.grid)
            .ok_or_else(|| FarmError::BadRequest(format!("unknown grid `{}`", self.grid)))?;
        let sweep: Sweep<'_> = match &self.budgets {
            Some(b) => sweep.replace_budgets(b.iter().copied()),
            None => sweep,
        };
        let sweep: Sweep<'_> = match &self.models {
            Some(names) => {
                let ids = ncdrf::resolve_models(names)
                    .map_err(|e| FarmError::BadRequest(e.to_string()))?;
                sweep.models(ids)
            }
            None => sweep,
        };
        Ok(sweep.signature())
    }
}

/// Life-cycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Submitted; no cells leased yet.
    Queued,
    /// Cells are leased / delivered / healing.
    Running,
    /// Every cell resolved healthy; the merged report is served.
    Complete,
}

impl JobState {
    /// Wire name of the state.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Complete => "complete",
        }
    }
}

/// A point-in-time public view of one job.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job id (`job-N`).
    pub job: String,
    /// Life-cycle state.
    pub state: JobState,
    /// Total grid cells.
    pub cells: usize,
    /// Cells resolved healthy so far.
    pub resolved: usize,
    /// Cells currently resolved as failed (awaiting heal).
    pub failed: usize,
    /// Cells waiting to be leased.
    pub pending: usize,
    /// Cells held by live leases.
    pub leased: usize,
    /// Heal rounds the tick cadence has started.
    pub heal_rounds: u64,
    /// Whether the job completed instantly from the re-merge cache.
    pub from_cache: bool,
    /// Summed per-cell cache counters of the merged report (complete
    /// jobs only).
    pub scheduling: Option<CacheStats>,
}

/// Receipt returned by [`Farm::submit`].
#[derive(Debug, Clone)]
pub struct SubmitReceipt {
    /// Assigned job id.
    pub job: String,
    /// Total grid cells.
    pub cells: usize,
    /// State right after submit (`Complete` on a cache hit).
    pub state: JobState,
}

/// Receipt returned by [`Farm::deliver`].
#[derive(Debug, Clone)]
pub struct DeliverReceipt {
    /// The job the lease belonged to.
    pub job: String,
    /// Cells resolved healthy after this delivery.
    pub resolved: usize,
    /// Cells still failed or missing after this delivery.
    pub unresolved: usize,
    /// Whether this delivery completed the job.
    pub complete: bool,
}

/// What one [`Farm::tick`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickReport {
    /// Leases that expired and had their cells requeued.
    pub expired: usize,
    /// Jobs whose failed/missing cells were requeued for healing.
    pub healed: usize,
    /// Artifacts the directory watcher ingested out-of-band.
    pub ingested: usize,
}

struct Lease {
    job: String,
    tasks: Vec<u64>,
    deadline: u64,
    expired: bool,
    delivered: bool,
}

struct Job {
    id: String,
    state: JobState,
    signature: GridSignature,
    cells: usize,
    persist: bool,
    /// Faults not yet injected (consumed by the first leases that cover
    /// them, so heal reissues never re-inject).
    faults: Vec<u64>,
    pending: VecDeque<u64>,
    delivered: Vec<SweepShard>,
    /// Re-merge-cache keys whose artifacts seed this job's descents.
    seed_keys: Vec<String>,
    heal_rounds: u64,
    from_cache: bool,
    report_json: Option<String>,
    scheduling: Option<CacheStats>,
    /// Per-lease artifact files written for this job (GC'd on
    /// completion, keyed on the job's signature).
    artifact_files: Vec<PathBuf>,
}

impl Job {
    /// Failed-or-missing task set of the current delivery state.
    fn unresolved_set(&self) -> BTreeSet<u64> {
        if self.delivered.is_empty() {
            return (0..self.cells as u64).collect();
        }
        let rec = SweepShard::reconcile(&self.delivered)
            .expect("delivered artifacts were validated on ingest");
        SweepShard::unresolved(std::slice::from_ref(&rec))
            .expect("a reconciled artifact resolves")
            .into_iter()
            .collect()
    }
}

struct FarmState {
    jobs: Vec<Job>,
    next_job: u64,
    next_lease: u64,
    leases: BTreeMap<u64, Lease>,
    /// The incremental re-merge cache: complete consolidated artifacts
    /// keyed on their signature's `Debug` rendering. An exact-signature
    /// resubmit completes instantly from here; a resume-compatible one
    /// (same corpus/machines/options, new budgets) seeds its spill
    /// descents from here.
    cache: BTreeMap<String, SweepShard>,
    /// Files the watcher already ingested (or the farm itself wrote).
    seen_files: BTreeSet<PathBuf>,
}

/// The resident sweep farm. Shared across the HTTP server, the tick
/// loop and any local worker backend via `Arc<Farm>`; all state is
/// behind one mutex (grid evaluation happens in workers, never under
/// the lock).
pub struct Farm {
    config: FarmConfig,
    state: Mutex<FarmState>,
}

/// The cache key of a grid signature.
fn signature_key(sig: &GridSignature) -> String {
    format!("{sig:?}")
}

impl Farm {
    /// Creates a farm. When the config names an artifact directory, any
    /// complete consolidated artifacts already in it pre-seed the
    /// re-merge cache (so a restarted daemon keeps serving finished
    /// grids without recomputing a cell).
    pub fn new(config: FarmConfig) -> Farm {
        let mut cache = BTreeMap::new();
        let mut seen_files = BTreeSet::new();
        if let Some(dir) = &config.artifact_dir {
            if let Ok(found) = ncdrf::scan_artifacts(dir) {
                for (path, shard) in found {
                    let complete = shard.cell_count() == shard.signature().total_tasks()
                        && shard.failure_count() == 0;
                    if complete {
                        cache.insert(signature_key(shard.signature()), shard);
                    }
                    seen_files.insert(path);
                }
            }
        }
        let farm = Farm {
            config,
            state: Mutex::new(FarmState {
                jobs: Vec::new(),
                next_job: 0,
                next_lease: 0,
                leases: BTreeMap::new(),
                cache,
                seen_files,
            }),
        };
        // Diagnostic name for model-checker traces (no-op otherwise).
        parking_lot::name_mutex(&farm.state, "farm.state");
        farm
    }

    /// The farm's configuration.
    pub fn config(&self) -> &FarmConfig {
        &self.config
    }

    /// Submits a job. On an exact re-merge-cache hit the job completes
    /// instantly — byte-identical report, zero cells recomputed; on a
    /// resume-compatible hit (same corpus/machines/options, different
    /// budgets) the cached artifact's persisted trajectories seed the
    /// new job's spill descents.
    ///
    /// # Errors
    ///
    /// [`FarmError::BadRequest`] (malformed spec), [`FarmError::Oversized`]
    /// (grid beyond [`FarmConfig::max_cells`]) or [`FarmError::QueueFull`]
    /// — none of which mutate queue state.
    pub fn submit(&self, body: &str, _now: u64) -> Result<SubmitReceipt, FarmError> {
        let spec = JobSpec::from_json(body)?;
        let signature = spec.signature()?;
        let cells = signature.total_tasks();
        if cells == 0 {
            return Err(FarmError::BadRequest("the grid has no cells".to_owned()));
        }
        if cells > self.config.max_cells {
            return Err(FarmError::Oversized {
                cells,
                max: self.config.max_cells,
            });
        }
        if let Some(&t) = spec.inject_fail.iter().find(|&&t| t >= cells as u64) {
            return Err(FarmError::BadRequest(format!(
                "`inject_fail` names cell {t}, the grid has {cells}"
            )));
        }
        let mut state = self.state.lock();
        let unfinished = state
            .jobs
            .iter()
            .filter(|j| j.state != JobState::Complete)
            .count();
        if unfinished >= self.config.queue_cap {
            return Err(FarmError::QueueFull {
                cap: self.config.queue_cap,
            });
        }
        state.next_job += 1;
        let id = format!("job-{}", state.next_job);
        let key = signature_key(&signature);

        if let Some(cached) = state.cache.get(&key) {
            // Exact signature: serve the cached consolidation without
            // recomputing a cell. The report is the same merge of the
            // same artifact, hence byte-identical to the original run.
            let merged = SweepShard::merge(std::slice::from_ref(cached))
                .expect("cached artifacts are complete");
            let job = Job {
                id: id.clone(),
                state: JobState::Complete,
                signature,
                cells,
                persist: spec.persist,
                faults: Vec::new(),
                pending: VecDeque::new(),
                delivered: vec![cached.clone()],
                seed_keys: Vec::new(),
                heal_rounds: 0,
                from_cache: true,
                scheduling: Some(merged.report.scheduling),
                report_json: Some(merged.render(ReportFormat::Json)),
                artifact_files: Vec::new(),
            };
            state.jobs.push(job);
            return Ok(SubmitReceipt {
                job: id,
                cells,
                state: JobState::Complete,
            });
        }

        let seed_keys: Vec<String> = state
            .cache
            .iter()
            .filter(|(_, shard)| {
                signature.resumes(shard.signature()) && shard.trajectory_count() > 0
            })
            .map(|(k, _)| k.clone())
            .collect();
        let job = Job {
            id: id.clone(),
            state: JobState::Queued,
            signature,
            cells,
            persist: spec.persist,
            faults: spec.inject_fail.clone(),
            pending: (0..cells as u64).collect(),
            delivered: Vec::new(),
            seed_keys,
            heal_rounds: 0,
            from_cache: false,
            scheduling: None,
            report_json: None,
            artifact_files: Vec::new(),
        };
        state.jobs.push(job);
        Ok(SubmitReceipt {
            job: id,
            cells,
            state: JobState::Queued,
        })
    }

    /// A snapshot of one job.
    ///
    /// # Errors
    ///
    /// [`FarmError::NotFound`] for an unknown id.
    pub fn status(&self, job_id: &str) -> Result<JobStatus, FarmError> {
        let state = self.state.lock();
        let job = state
            .jobs
            .iter()
            .find(|j| j.id == job_id)
            .ok_or_else(|| FarmError::NotFound(format!("unknown job `{job_id}`")))?;
        let un = job.unresolved_set();
        let failed = if job.delivered.is_empty() {
            0
        } else {
            SweepShard::reconcile(&job.delivered)
                .expect("delivered artifacts were validated on ingest")
                .failure_count()
        };
        let leased = state
            .leases
            .values()
            .filter(|l| l.job == job.id && !l.expired && !l.delivered)
            .map(|l| l.tasks.len())
            .sum();
        Ok(JobStatus {
            job: job.id.clone(),
            state: job.state,
            cells: job.cells,
            resolved: job.cells - un.len(),
            failed,
            pending: job.pending.len(),
            leased,
            heal_rounds: job.heal_rounds,
            from_cache: job.from_cache,
            scheduling: job.scheduling,
        })
    }

    /// Snapshots of all jobs, in submission order.
    pub fn jobs(&self) -> Vec<JobStatus> {
        let ids: Vec<String> = {
            let state = self.state.lock();
            state.jobs.iter().map(|j| j.id.clone()).collect()
        };
        ids.iter()
            .map(|id| self.status(id).expect("job listed a moment ago"))
            .collect()
    }

    /// Farm-wide counters: `(jobs, unfinished_jobs, live_leases,
    /// cached_grids)`.
    pub fn stats(&self) -> (usize, usize, usize, usize) {
        let state = self.state.lock();
        let unfinished = state
            .jobs
            .iter()
            .filter(|j| j.state != JobState::Complete)
            .count();
        let live = state
            .leases
            .values()
            .filter(|l| !l.expired && !l.delivered)
            .count();
        (state.jobs.len(), unfinished, live, state.cache.len())
    }

    /// The merged report of a complete job — the exact bytes
    /// `shard_runner merge --out` would write, proven bit-identical to
    /// `run_sequential` by the farm test suite and the `farm-verify` CI
    /// job.
    ///
    /// # Errors
    ///
    /// [`FarmError::NotFound`] / [`FarmError::NotReady`].
    pub fn report(&self, job_id: &str) -> Result<String, FarmError> {
        let state = self.state.lock();
        let job = state
            .jobs
            .iter()
            .find(|j| j.id == job_id)
            .ok_or_else(|| FarmError::NotFound(format!("unknown job `{job_id}`")))?;
        job.report_json
            .clone()
            .ok_or_else(|| FarmError::NotReady(format!("job `{job_id}` is not complete")))
    }

    /// Claims a lease for a worker: up to [`FarmConfig::lease_cells`]
    /// pending cells of the oldest unfinished job, with any not-yet-
    /// injected faults that fall inside the slice (consumed here, so a
    /// heal reissue of the same cells never re-injects), the grid
    /// signature the worker rebuilds the sweep from, and any
    /// resume-compatible seed artifacts. `None` when no job has pending
    /// cells.
    pub fn claim(&self, worker: &str, now: u64) -> Option<LeaseOffer> {
        let mut state = self.state.lock();
        let state = &mut *state;
        let job = state
            .jobs
            .iter_mut()
            .find(|j| j.state != JobState::Complete && !j.pending.is_empty())?;
        let take = self.config.lease_cells.max(1).min(job.pending.len());
        let tasks: Vec<u64> = job.pending.drain(..take).collect();
        let faults: Vec<u64> = job
            .faults
            .iter()
            .copied()
            .filter(|t| tasks.contains(t))
            .collect();
        job.faults.retain(|t| !faults.contains(t));
        job.state = JobState::Running;
        let seeds: Vec<SweepShard> = job
            .seed_keys
            .iter()
            .filter_map(|k| state.cache.get(k).cloned())
            .collect();
        state.next_lease += 1;
        let lease = state.next_lease;
        let deadline = now + self.config.lease_ms;
        state.leases.insert(
            lease,
            Lease {
                job: job.id.clone(),
                tasks: tasks.clone(),
                deadline,
                expired: false,
                delivered: false,
            },
        );
        let _ = worker;
        Some(LeaseOffer {
            lease,
            job: job.id.clone(),
            tasks,
            faults,
            persist: job.persist,
            deadline,
            signature: job.signature.clone(),
            seeds,
        })
    }

    /// Ingests a worker's artifact for a lease. Deliveries are
    /// **at-least-once**: an expired lease's late artifact is still
    /// accepted (its cells may also have been re-leased, and
    /// [`SweepShard::reconcile`]'s permutation-invariant winner rule
    /// guarantees the duplicates collapse to one counted cell).
    ///
    /// # Errors
    ///
    /// [`FarmError::NotFound`] for a never-issued lease,
    /// [`FarmError::BadRequest`] for an artifact that does not match
    /// the job's grid, [`FarmError::CertifyRejected`] when
    /// [`FarmConfig::certify`] is set and a claimed cell cannot be
    /// re-derived and certified — none of which mutate farm state.
    pub fn deliver(
        &self,
        lease_id: u64,
        artifact: SweepShard,
        now: u64,
    ) -> Result<DeliverReceipt, FarmError> {
        // Certification re-evaluates the artifact's cells — real grid
        // work — so it runs before the state lock, like the workers do.
        // A rejection is a pure refusal: no lease or queue state has
        // been touched yet.
        if self.config.certify {
            let faults = ncdrf::certify_shard(
                &artifact,
                std::sync::Arc::new(ncdrf_certify::ScheduleCertifier),
            )
            .map_err(|e| FarmError::BadRequest(format!("artifact is not certifiable: {e}")))?;
            if let Some(first) = faults.first() {
                return Err(FarmError::CertifyRejected(format!(
                    "certification rejected {} of {} delivered cells; first: {first}",
                    faults.len(),
                    artifact.cell_count(),
                )));
            }
        }
        let mut state = self.state.lock();
        let state = &mut *state;
        let lease = state
            .leases
            .get_mut(&lease_id)
            .ok_or_else(|| FarmError::NotFound(format!("unknown lease `{lease_id}`")))?;
        let job = state
            .jobs
            .iter_mut()
            .find(|j| j.id == lease.job)
            .expect("a lease's job outlives it");
        if *artifact.signature() != job.signature {
            return Err(FarmError::BadRequest(
                "artifact signature does not match the lease's job".to_owned(),
            ));
        }
        // Validate the artifact alone (in-grid cells etc.) before any
        // state changes, so a refused delivery mutates nothing.
        SweepShard::reconcile(std::slice::from_ref(&artifact))
            .map_err(|e| FarmError::BadRequest(format!("artifact does not reconcile: {e}")))?;

        lease.delivered = true;
        if let Some(dir) = &self.config.artifact_dir {
            let path = dir.join(format!("{}-lease-{}.json", job.id, lease_id));
            if ncdrf::write_artifact(&path, &artifact.render(ReportFormat::Json)).is_ok() {
                job.artifact_files.push(path.clone());
                state.seen_files.insert(path);
            }
        }
        job.delivered.push(artifact);
        let un = job.unresolved_set();
        job.pending.retain(|t| un.contains(t));
        let resolved = job.cells - un.len();
        let complete = un.is_empty();
        let job_id = job.id.clone();
        if complete {
            Self::finish_job(&self.config, state, &job_id);
        }
        let _ = now;
        Ok(DeliverReceipt {
            job: job_id,
            resolved,
            unresolved: un.len(),
            complete,
        })
    }

    /// One scheduler tick: expires overdue leases (requeueing their
    /// undelivered cells), lets the directory watcher ingest artifacts
    /// that appeared out-of-band, and runs the heal cadence — every
    /// failed or lost cell that is neither pending nor held by a live
    /// lease is requeued, exactly the `unresolved → reissue → merge`
    /// protocol the CLI heal pipeline uses.
    pub fn tick(&self, now: u64) -> TickReport {
        let mut report = TickReport::default();
        let mut state = self.state.lock();
        let state = &mut *state;

        // 1. Lease expiry: a dead worker's cells go back in the queue.
        for (_, lease) in state.leases.iter_mut() {
            if !lease.expired && !lease.delivered && lease.deadline <= now {
                lease.expired = true;
                report.expired += 1;
                if let Some(job) = state.jobs.iter_mut().find(|j| j.id == lease.job) {
                    if job.state != JobState::Complete {
                        let un = job.unresolved_set();
                        for &t in lease.tasks.iter().rev() {
                            if un.contains(&t) && !job.pending.contains(&t) {
                                job.pending.push_front(t);
                            }
                        }
                    }
                }
            }
        }

        // 2. Watcher: ingest shard files that appeared in the artifact
        // directory without passing through the HTTP API (a worker
        // writing straight to shared storage).
        if let Some(dir) = &self.config.artifact_dir {
            if let Ok(found) = ncdrf::scan_artifacts(dir) {
                for (path, shard) in found {
                    if state.seen_files.contains(&path) {
                        continue;
                    }
                    state.seen_files.insert(path.clone());
                    let Some(job) = state.jobs.iter_mut().find(|j| {
                        j.state != JobState::Complete && j.signature == *shard.signature()
                    }) else {
                        continue;
                    };
                    if SweepShard::reconcile(std::slice::from_ref(&shard)).is_err() {
                        continue;
                    }
                    job.artifact_files.push(path);
                    job.delivered.push(shard);
                    let un = job.unresolved_set();
                    job.pending.retain(|t| un.contains(t));
                    report.ingested += 1;
                    if un.is_empty() {
                        let job_id = job.id.clone();
                        Self::finish_job(&self.config, state, &job_id);
                    }
                }
            }
        }

        // 3. Heal cadence: requeue failed/lost cells nobody is working
        // on.
        for i in 0..state.jobs.len() {
            let job = &state.jobs[i];
            if job.state != JobState::Running {
                continue;
            }
            let mut un = job.unresolved_set();
            for t in &job.pending {
                un.remove(t);
            }
            for lease in state.leases.values() {
                if lease.job == job.id && !lease.expired && !lease.delivered {
                    for t in &lease.tasks {
                        un.remove(t);
                    }
                }
            }
            if un.is_empty() {
                continue;
            }
            let mut heal: Vec<u64> = un.into_iter().collect();
            heal.sort_unstable();
            let job = &mut state.jobs[i];
            job.pending.extend(heal);
            job.heal_rounds += 1;
            report.healed += 1;
        }
        report
    }

    /// Completes a job: caches its consolidated artifact under the grid
    /// signature (the incremental re-merge cache), renders and stores
    /// the merged report, retires its leases, persists the
    /// consolidation and GC's the per-lease artifacts of this signature.
    fn finish_job(config: &FarmConfig, state: &mut FarmState, job_id: &str) {
        let job = state
            .jobs
            .iter_mut()
            .find(|j| j.id == job_id)
            .expect("finishing a known job");
        let consolidated =
            SweepShard::reconcile(&job.delivered).expect("delivered artifacts reconcile");
        let merged = SweepShard::merge(std::slice::from_ref(&consolidated))
            .expect("a complete consolidation merges");
        debug_assert!(merged.is_complete());
        job.state = JobState::Complete;
        job.pending.clear();
        job.scheduling = Some(merged.report.scheduling);
        job.report_json = Some(merged.render(ReportFormat::Json));
        job.delivered = vec![consolidated.clone()];

        // Artifact GC, keyed on the signature: the consolidated
        // artifact replaces every per-lease file of this grid.
        if let Some(dir) = &config.artifact_dir {
            let path = dir.join(format!("consolidated-{job_id}.json"));
            if ncdrf::write_artifact(&path, &consolidated.render(ReportFormat::Json)).is_ok() {
                state.seen_files.insert(path);
            }
        }
        let key = signature_key(&job.signature);
        let files: Vec<PathBuf> = std::mem::take(&mut job.artifact_files);
        let lease_ids: Vec<u64> = state
            .leases
            .iter()
            .filter(|(_, l)| l.job == job_id)
            .map(|(&id, _)| id)
            .collect();
        for id in lease_ids {
            state.leases.remove(&id);
        }
        state.cache.insert(key, consolidated);
        for path in files {
            let _ = std::fs::remove_file(&path);
            state.seen_files.remove(&path);
        }
    }
}

/// One merged [`PartialSweep`], parsed back from a farm report body —
/// a convenience for tests and clients that want values, not bytes.
///
/// # Errors
///
/// The underlying parse error, stringified.
pub fn parse_report(body: &str) -> Result<PartialSweep, String> {
    ncdrf::parse_partial_sweep(body).map_err(|e| e.to_string())
}
