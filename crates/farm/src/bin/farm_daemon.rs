//! The resident sweep-farm daemon.
//!
//! ```text
//! farm_daemon [--addr HOST:PORT] [--artifact-dir DIR] [--queue-cap N]
//!             [--max-cells N] [--lease-ms MS] [--lease-cells N]
//!             [--tick-ms MS] [--local-backend] [--workers N] [--certify]
//! ```
//!
//! Serves the farm API (see `ncdrf_farm::api`), runs the scheduler
//! tick (lease expiry, artifact watcher, heal cadence) on a cadence,
//! and — with `--local-backend` — evaluates leases in-process on a
//! shared `ncdrf_exec::Pool`, so a single binary is a complete farm.
//! Without it, external workers (`shard_runner worker --farm URL`)
//! pull the leases instead.

use ncdrf_exec::Pool;
use ncdrf_farm::worker::{evaluate_lease, LeaseOffer};
use ncdrf_farm::{api, serve_with_clock, Clock, Farm, FarmConfig};
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn die(msg: &str) -> ! {
    eprintln!("farm_daemon: {msg}");
    eprintln!(
        "usage: farm_daemon [--addr HOST:PORT] [--artifact-dir DIR] [--queue-cap N] \
         [--max-cells N] [--lease-ms MS] [--lease-cells N] [--tick-ms MS] \
         [--local-backend] [--workers N] [--certify]"
    );
    exit(2);
}

fn main() {
    let mut addr = String::from("127.0.0.1:7420");
    let mut config = FarmConfig::default();
    let mut tick_ms: u64 = 250;
    let mut local_backend = false;
    let mut workers: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--artifact-dir" => config.artifact_dir = Some(PathBuf::from(value("--artifact-dir"))),
            "--queue-cap" => {
                config.queue_cap = value("--queue-cap")
                    .parse()
                    .unwrap_or_else(|_| die("--queue-cap needs a count"));
            }
            "--max-cells" => {
                config.max_cells = value("--max-cells")
                    .parse()
                    .unwrap_or_else(|_| die("--max-cells needs a count"));
            }
            "--lease-ms" => {
                config.lease_ms = value("--lease-ms")
                    .parse()
                    .unwrap_or_else(|_| die("--lease-ms needs milliseconds"));
            }
            "--lease-cells" => {
                config.lease_cells = value("--lease-cells")
                    .parse()
                    .unwrap_or_else(|_| die("--lease-cells needs a count"));
            }
            "--tick-ms" => {
                tick_ms = value("--tick-ms")
                    .parse()
                    .unwrap_or_else(|_| die("--tick-ms needs milliseconds"));
            }
            "--local-backend" => local_backend = true,
            "--certify" => config.certify = true,
            "--workers" => {
                workers = Some(
                    value("--workers")
                        .parse()
                        .unwrap_or_else(|_| die("--workers needs a count")),
                );
            }
            other => die(&format!("unknown flag `{other}`")),
        }
    }
    let tick_ms = tick_ms.max(1);

    let farm = Arc::new(Farm::new(config));
    // Every daemon timestamp flows through one injected clock.
    let clock = Clock::System;
    let server = match serve_with_clock(Arc::clone(&farm), &addr, clock.clone()) {
        Ok(server) => server,
        Err(e) => die(&e),
    };
    println!("[farm listening on {}]", server.addr());

    // Scheduler tick: lease expiry, artifact watcher, heal cadence.
    {
        let farm = Arc::clone(&farm);
        let clock = clock.clone();
        thread::spawn(move || loop {
            let report = farm.tick(clock.now_ms());
            if report.expired + report.healed + report.ingested > 0 {
                println!(
                    "[tick: {} leases expired, {} jobs healed, {} artifacts ingested]",
                    report.expired, report.healed, report.ingested
                );
            }
            thread::sleep(Duration::from_millis(tick_ms));
        });
    }

    // Local worker backend: claim → evaluate → deliver, in-process,
    // sharing one persistent pool across leases. The claim/deliver
    // calls go through the same `api::route` the HTTP surface uses.
    if local_backend {
        let pool = Arc::new(match workers {
            Some(n) => Pool::with_workers(n),
            None => Pool::new(),
        });
        let farm = Arc::clone(&farm);
        let clock = clock.clone();
        thread::spawn(move || loop {
            let (status, body) = api::route(&farm, "POST", "/leases", "local", clock.now_ms());
            if status != 200 {
                thread::sleep(Duration::from_millis(50));
                continue;
            }
            let offer = match LeaseOffer::from_json(&body) {
                Ok(offer) => offer,
                Err(e) => {
                    eprintln!("[local backend: bad offer: {e}]");
                    continue;
                }
            };
            let lease = offer.lease;
            match evaluate_lease(&offer, Some(Arc::clone(&pool))) {
                Ok(artifact) => {
                    if let Err(e) = farm.deliver(lease, artifact, clock.now_ms()) {
                        eprintln!("[local backend: deliver lease {lease}: {e}]");
                    }
                }
                Err(e) => eprintln!("[local backend: lease {lease}: {e}]"),
            }
        });
    }

    // The accept loop runs on its own thread; park this one forever.
    loop {
        thread::sleep(Duration::from_secs(3600));
    }
}
