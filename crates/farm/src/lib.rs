//! # ncdrf-farm — the resident sweep-farm daemon
//!
//! A long-lived scheduler over the sharded sweep substrate: jobs name a
//! grid (`preset_sweep` + optional budget override), the farm leases
//! the grid's cells to workers in expirable slices, heals failed or
//! lost cells on a tick cadence via the same `unresolved → reissue →
//! merge` protocol the CLI uses, and serves job status and the merged
//! report over a tiny HTTP/1.1 + JSON API. Every served report is
//! byte-identical to what `Sweep::run_sequential` + `shard_runner
//! merge` would produce — counters included — which the farm test
//! suite and the `farm-verify` CI job assert.
//!
//! The moving parts:
//!
//! * [`Farm`] — the state machine: bounded job queue (submits beyond
//!   [`FarmConfig::queue_cap`] get HTTP 429), cell leases with
//!   millisecond deadlines, at-least-once delivery reconciled through
//!   [`ncdrf::SweepShard::reconcile`] so duplicates never double-count
//!   [`ncdrf::CacheStats`], an artifact-directory watcher, and an
//!   incremental re-merge cache keyed on [`ncdrf::GridSignature`]
//!   (exact resubmits complete instantly; resume-compatible ones seed
//!   their spill descents). All methods take `now` explicitly — the
//!   farm owns no clock.
//! * [`worker`] — the other side of the lease protocol:
//!   [`LeaseOffer`], its wire round-trip, and [`evaluate_lease`]
//!   which rebuilds the sweep from the offer's signature and evaluates
//!   exactly the leased cells.
//! * [`api`] — the HTTP surface as a pure `(method, path, body, now) →
//!   (status, body)` function; [`http`] is the `std::net` shell around
//!   it, plus the blocking client workers use.
//! * [`clock`] — the injected wall clock the daemon shell feeds `now`
//!   from: [`Clock::System`] in production, [`Clock::manual`] in tests
//!   and model-checker scenarios. The farm state machine itself never
//!   reads time.
//!
//! The `farm_daemon` binary wires these together: serve, tick, and
//! optionally run an in-process local worker backend.

#![warn(missing_docs)]

pub mod api;
pub mod clock;
mod farm;
pub mod http;
mod json;
pub mod worker;

pub use clock::Clock;
pub use farm::{
    parse_report, DeliverReceipt, Farm, FarmConfig, FarmError, JobSpec, JobState, JobStatus,
    SubmitReceipt, TickReport,
};
pub use http::{request, serve, serve_with_clock, FarmServer};
pub use worker::{evaluate_lease, now_millis, LeaseOffer};
