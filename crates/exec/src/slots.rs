//! Per-task result cells: one pre-allocated slot per grid index, written
//! exactly once by whichever worker claims the index, with no shared
//! lock on the write path.

use std::cell::UnsafeCell;

/// A fixed-size vector of write-once result cells.
///
/// The work-stealing deques hand every index to exactly one worker, so
/// each cell has exactly one writer and the writes are disjoint; the
/// scope join that ends the run happens-before the reads in
/// [`SlotVec::into_results`].
pub(crate) struct SlotVec<T> {
    cells: Vec<UnsafeCell<Option<T>>>,
}

// SAFETY: distinct indices refer to distinct cells, each written at most
// once by the single worker that claimed the index from the deques (see
// `Pool::run`); no cell is read until every worker has been joined.
unsafe impl<T: Send> Sync for SlotVec<T> {}

impl<T> SlotVec<T> {
    pub(crate) fn new(len: usize) -> Self {
        SlotVec {
            cells: std::iter::repeat_with(|| UnsafeCell::new(None))
                .take(len)
                .collect(),
        }
    }

    /// Writes the result for `index`.
    ///
    /// # Safety contract (internal)
    ///
    /// The caller must guarantee `index` is claimed by exactly one worker
    /// for the lifetime of the run — the deque hand-off in `Pool::run`
    /// provides this.
    pub(crate) fn set(&self, index: usize, value: T) {
        parking_lot::trace_access(self.cells[index].get() as usize, true, "pool.slot");
        // SAFETY: unique writer per index (cursor claim), bounds-checked
        // access, and no concurrent reader before the scope join.
        unsafe {
            *self.cells[index].get() = Some(value);
        }
    }

    /// Consumes the slots, panicking if any index was never written
    /// (which would mean the pool lost a task — a bug, not a user error).
    pub(crate) fn into_results(self) -> Vec<T> {
        // Trace the reads before the cells move out of the buffer, so
        // the addresses pair up with the workers' writes in the
        // happens-before analysis.
        for cell in &self.cells {
            parking_lot::trace_access(cell.get() as usize, false, "pool.slot");
        }
        self.cells
            .into_iter()
            .enumerate()
            .map(|(i, cell)| {
                cell.into_inner()
                    .unwrap_or_else(|| panic!("task {i} was never executed"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_threaded_roundtrip() {
        let slots = SlotVec::new(3);
        slots.set(2, "c");
        slots.set(0, "a");
        slots.set(1, "b");
        assert_eq!(slots.into_results(), vec!["a", "b", "c"]);
    }

    #[test]
    #[should_panic(expected = "task 1 was never executed")]
    fn missing_slot_is_a_loud_bug() {
        let slots: SlotVec<u8> = SlotVec::new(2);
        slots.set(0, 1);
        let _ = slots.into_results();
    }
}
