//! # ncdrf-exec — the sweep execution subsystem
//!
//! A persistent worker [`Pool`] for running indexed task grids (such
//! as a sweep's flattened `(machine, loop)` pairs) with:
//!
//! * **one pool per process** — worker threads are spawned lazily on the
//!   first parallel run and parked between runs, so a session executing
//!   many sweeps (a budget ladder, one grid per figure, a repeated
//!   bench) reuses the same threads instead of respawning per `run`;
//! * **dynamic self-scheduling** — tasks are claimed one at a time from
//!   a shared cursor, so skewed per-task costs (one slow loop, one big
//!   machine) don't serialise the rest of the grid;
//! * **lock-free result slots** — every task writes its result into its
//!   own pre-allocated cell instead of a shared `Mutex<Vec<_>>`;
//! * **panic isolation** — a panicking task is caught and reported as a
//!   [`TaskPanic`] for its index; every other task still completes, the
//!   process never aborts, and the pool keeps serving later runs.
//!
//! ```
//! use ncdrf_exec::Pool;
//!
//! let pool = Pool::with_workers(4);
//! let results = pool.run(8, |i| i * i);
//! let squares: Vec<usize> = results.into_iter().map(Result::unwrap).collect();
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![warn(missing_docs)]

mod panic;
mod pool;
mod slots;

pub use panic::TaskPanic;
pub use pool::Pool;
