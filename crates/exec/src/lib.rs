//! # ncdrf-exec — the sweep execution subsystem
//!
//! A work-stealing worker [`Pool`] for running indexed task grids (such
//! as a sweep's flattened `(machine, loop)` pairs) with:
//!
//! * **one pool per run** — threads are spawned once for the whole grid,
//!   not once per corpus call;
//! * **work stealing** — each worker owns a deque seeded with a
//!   contiguous chunk of the grid and steals from its siblings when it
//!   runs dry, so skewed per-task costs (one slow loop, one big machine)
//!   don't serialise the rest;
//! * **lock-free result slots** — every task writes its result into its
//!   own pre-allocated cell instead of a shared `Mutex<Vec<_>>`;
//! * **panic isolation** — a panicking task is caught and reported as a
//!   [`TaskPanic`] for its index; every other task still completes and
//!   the process never aborts.
//!
//! ```
//! use ncdrf_exec::Pool;
//!
//! let pool = Pool::with_workers(4);
//! let results = pool.run(8, |i| i * i);
//! let squares: Vec<usize> = results.into_iter().map(Result::unwrap).collect();
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![warn(missing_docs)]

mod panic;
mod pool;
mod slots;

pub use panic::TaskPanic;
pub use pool::Pool;
