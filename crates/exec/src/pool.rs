//! The persistent worker pool.

use crate::panic::run_task;
use crate::slots::SlotVec;
use parking_lot::thread::JoinHandle;
use parking_lot::{name_condvar, name_mutex, thread, Condvar, Mutex};
use std::sync::Arc;

/// A reusable worker pool for indexed task grids.
///
/// Worker threads are spawned **once** — lazily, on the first [`run`]
/// that needs them — and parked between runs, so a process that executes
/// many grids (a session running one sweep per figure, a bench repeating
/// a sweep, a ladder of budget grids) pays thread start-up once instead
/// of once per `run`. Tasks are claimed from a shared cursor under the
/// job lock (dynamic self-scheduling): a slow task never blocks the rest
/// of the grid, which is the same load-balancing guarantee the previous
/// per-run deque-stealing pool provided, without respawning threads.
/// Results land in independent per-task cells, and a panicking task is
/// isolated as a [`TaskPanic`](crate::TaskPanic) for its index.
///
/// Runs on one pool are serialised (`run` from two threads queues); a
/// task must not call `run` on its own pool. Dropping the pool joins its
/// workers.
///
/// [`run`]: Pool::run
#[derive(Debug)]
pub struct Pool {
    workers: usize,
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Serialises concurrent `run` calls: the job slot holds one grid.
    submit: Mutex<()>,
}

/// State shared with the worker threads.
#[derive(Debug)]
struct Shared {
    state: Mutex<State>,
    /// Workers wait here for a job (or shutdown).
    work: Condvar,
    /// The submitting thread waits here for grid completion.
    done: Condvar,
}

#[derive(Debug)]
struct State {
    job: Option<Job>,
    /// Next unclaimed task index of the current job.
    next: usize,
    /// Tasks of the current job that finished executing.
    finished: usize,
    shutdown: bool,
}

/// A type-erased borrowed grid closure. The pointer refers into the
/// stack frame of the `run` call that published the job; it is only
/// dereferenced for claimed indices `< total`, and `run` does not return
/// (ending that frame) until every claimed task has finished.
#[derive(Debug, Clone, Copy)]
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize),
    total: usize,
}

// SAFETY: the raw pointer crosses threads only for the duration of one
// `run` call, which outlives every dereference (completion is awaited
// before returning) — see `Job`.
unsafe impl Send for Job {}

/// Invokes the erased closure. SAFETY: `data` must point to a live `G`.
unsafe fn call_erased<G: Fn(usize)>(data: *const (), index: usize) {
    (*(data as *const G))(index)
}

/// Erases a borrowed grid closure into a [`Job`].
fn job_for<G: Fn(usize)>(grid: &G, total: usize) -> Job {
    Job {
        data: grid as *const G as *const (),
        call: call_erased::<G>,
        total,
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new()
    }
}

impl Pool {
    /// A pool sized to the available hardware parallelism.
    pub fn new() -> Self {
        Pool::with_workers(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// A pool with an explicit worker count (clamped to at least 1).
    pub fn with_workers(workers: usize) -> Self {
        let pool = Pool {
            workers: workers.max(1),
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    job: None,
                    next: 0,
                    finished: 0,
                    shutdown: false,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
            }),
            handles: Mutex::new(Vec::new()),
            submit: Mutex::new(()),
        };
        // Diagnostic names for model-checker traces (no-ops otherwise).
        name_mutex(&pool.shared.state, "pool.state");
        name_mutex(&pool.handles, "pool.handles");
        name_mutex(&pool.submit, "pool.submit");
        name_condvar(&pool.shared.work, "pool.work");
        name_condvar(&pool.shared.done, "pool.done");
        pool
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Spawns the worker threads if this is the first parallel run.
    fn ensure_spawned(&self) {
        let mut handles = self.handles.lock();
        if !handles.is_empty() {
            return;
        }
        for _ in 0..self.workers {
            let shared = Arc::clone(&self.shared);
            handles.push(thread::spawn(move || worker_loop(&shared)));
        }
    }

    /// Runs tasks `0..tasks` on the pool and returns their results in
    /// index order.
    ///
    /// Each task is executed exactly once by exactly one worker. A task
    /// that panics yields `Err(TaskPanic)` in its slot; all other tasks
    /// still run to completion. With one worker (or one task) the grid is
    /// executed inline on the calling thread, still panic-isolated.
    pub fn run<R, F>(&self, tasks: usize, f: F) -> Vec<Result<R, crate::TaskPanic>>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let slots = SlotVec::new(tasks);
        if self.workers.min(tasks) <= 1 {
            for i in 0..tasks {
                slots.set(i, run_task(&f, i));
            }
            return slots.into_results();
        }
        self.ensure_spawned();

        // The whole grid as one infallible closure: `run_task` converts a
        // task panic into a value, so `grid` itself never unwinds and the
        // workers never see a panic.
        let grid = |i: usize| slots.set(i, run_task(&f, i));
        let _submission = self.submit.lock();
        {
            let mut st = self.shared.state.lock();
            debug_assert!(st.job.is_none(), "submission lock serialises jobs");
            st.job = Some(job_for(&grid, tasks));
            st.next = 0;
            st.finished = 0;
        }
        self.shared.work.notify_all();
        let mut st = self.shared.state.lock();
        while st.finished < tasks {
            self.shared.done.wait(&mut st);
        }
        st.job = None;
        drop(st);
        // Every task has finished: no worker holds a reference into this
        // frame any more, so `grid`/`slots`/`f` may be dropped/consumed.
        slots.into_results()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// A worker: claim the next unclaimed index of the current job, execute
/// it, report completion; park when no job (or no unclaimed index)
/// exists.
fn worker_loop(shared: &Shared) {
    let mut st = shared.state.lock();
    loop {
        if st.shutdown {
            return;
        }
        let claimed = match st.job {
            Some(job) if st.next < job.total => {
                let i = st.next;
                st.next += 1;
                Some((job, i))
            }
            _ => None,
        };
        match claimed {
            Some((job, i)) => {
                drop(st);
                // SAFETY: `i < total` was claimed exactly once under the
                // lock, and the submitter keeps the closure alive until
                // `finished == total` (which includes this task).
                unsafe { (job.call)(job.data, i) };
                st = shared.state.lock();
                st.finished += 1;
                if st.finished == job.total {
                    shared.done.notify_all();
                }
            }
            None => {
                shared.work.wait(&mut st);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_index_order() {
        for workers in [1, 2, 4, 7] {
            let pool = Pool::with_workers(workers);
            let out: Vec<usize> = pool
                .run(100, |i| i * 3)
                .into_iter()
                .map(Result::unwrap)
                .collect();
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        Pool::with_workers(8).run(64, |i| {
            counters[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "task {i}");
        }
    }

    #[test]
    fn one_pool_serves_many_runs() {
        // The reuse contract: repeated grids (and grids of different
        // types) on one pool, no respawn, results always exact.
        let pool = Pool::with_workers(4);
        for round in 0..5usize {
            let out: Vec<usize> = pool
                .run(32, |i| i + round)
                .into_iter()
                .map(Result::unwrap)
                .collect();
            assert_eq!(out, (round..32 + round).collect::<Vec<_>>());
        }
        let strings: Vec<String> = pool
            .run(3, |i| format!("task {i}"))
            .into_iter()
            .map(Result::unwrap)
            .collect();
        assert_eq!(strings, vec!["task 0", "task 1", "task 2"]);
        assert_eq!(pool.handles.lock().len(), 4, "spawned once");
    }

    #[test]
    fn a_panicking_task_is_isolated() {
        let pool = Pool::with_workers(4);
        let results = pool.run(10, |i| {
            if i == 5 {
                panic!("task five exploded");
            }
            i
        });
        for (i, r) in results.iter().enumerate() {
            if i == 5 {
                let err = r.as_ref().unwrap_err();
                assert_eq!(err.index, 5);
                assert_eq!(err.message, "task five exploded");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
        // The pool survives the panic and serves the next run.
        let ok: Vec<usize> = pool.run(4, |i| i).into_iter().map(Result::unwrap).collect();
        assert_eq!(ok, vec![0, 1, 2, 3]);
    }

    #[test]
    fn panic_isolation_holds_inline_too() {
        let results = Pool::with_workers(1).run(3, |i| {
            if i == 0 {
                panic!("first");
            }
            i
        });
        assert!(results[0].is_err());
        assert_eq!(results[1], Ok(1));
        assert_eq!(results[2], Ok(2));
    }

    #[test]
    fn skewed_task_costs_do_not_serialise_the_grid() {
        // Slow tasks sit at the front of the grid; the claim cursor
        // hands them to different workers while the rest of the grid
        // proceeds. (On a single-core host this degenerates to
        // timesharing — the assertion is about completion and
        // correctness, not wall-clock.)
        let slow = |i: usize| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i + 1
        };
        let out: Vec<usize> = Pool::with_workers(4)
            .run(32, slow)
            .into_iter()
            .map(Result::unwrap)
            .collect();
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_tiny_grids() {
        assert!(Pool::new().run(0, |i| i).is_empty());
        let one: Vec<_> = Pool::with_workers(16)
            .run(1, |i| i + 42)
            .into_iter()
            .collect();
        assert_eq!(one, vec![Ok(42)]);
    }

    #[test]
    fn shared_across_threads() {
        // `Arc<Pool>` is the sharing unit `Sweep::pool` uses.
        let pool = Arc::new(Pool::with_workers(2));
        let a = Arc::clone(&pool);
        let t = std::thread::spawn(move || {
            a.run(16, |i| i * 2)
                .into_iter()
                .map(Result::unwrap)
                .sum::<usize>()
        });
        let here: usize = pool
            .run(16, |i| i * 2)
            .into_iter()
            .map(Result::unwrap)
            .sum();
        assert_eq!(t.join().unwrap(), here);
    }
}
