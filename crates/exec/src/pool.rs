//! The work-stealing worker pool.

use crate::panic::{run_task, TaskPanic};
use crate::slots::SlotVec;
use crossbeam::deque::{Stealer, Worker};

/// A work-stealing worker pool for indexed task grids.
///
/// A `Pool` is a worker-count policy; threads live for exactly one
/// [`Pool::run`] call (scoped, so tasks may borrow from the caller) and
/// serve the whole grid from per-worker deques with stealing. Compare
/// with a map that respawns threads per corpus call and serialises
/// writes behind one results mutex — the pool spawns once per grid,
/// writes results into independent per-task cells, and isolates panics
/// per task instead of aborting the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    workers: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new()
    }
}

impl Pool {
    /// A pool sized to the available hardware parallelism.
    pub fn new() -> Self {
        Pool {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// A pool with an explicit worker count (clamped to at least 1).
    pub fn with_workers(workers: usize) -> Self {
        Pool {
            workers: workers.max(1),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs tasks `0..tasks` on the pool and returns their results in
    /// index order.
    ///
    /// Each task is executed exactly once by exactly one worker. A task
    /// that panics yields `Err(TaskPanic)` in its slot; all other tasks
    /// still run to completion. With one worker (or one task) the grid is
    /// executed inline on the calling thread, still panic-isolated.
    pub fn run<R, F>(&self, tasks: usize, f: F) -> Vec<Result<R, TaskPanic>>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let slots = SlotVec::new(tasks);
        let workers = self.workers.min(tasks);
        if workers <= 1 {
            for i in 0..tasks {
                slots.set(i, run_task(&f, i));
            }
            return slots.into_results();
        }

        // Seed each worker's deque with a contiguous chunk of the grid so
        // neighbouring tasks (same machine, adjacent loops) start on the
        // same worker; stealing rebalances skewed chunks from the far end.
        let locals: Vec<Worker<usize>> = (0..workers).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<usize>> = locals.iter().map(Worker::stealer).collect();
        let chunk = tasks.div_ceil(workers);
        for (w, local) in locals.iter().enumerate() {
            for i in (w * chunk)..((w + 1) * chunk).min(tasks) {
                local.push(i);
            }
        }

        let slots_ref = &slots;
        let f_ref = &f;
        let stealers_ref = &stealers;
        crossbeam::thread::scope(|scope| {
            for (wid, local) in locals.into_iter().enumerate() {
                scope.spawn(move |_| {
                    while let Some(i) = next_task(&local, stealers_ref, wid) {
                        slots_ref.set(i, run_task(f_ref, i));
                    }
                });
            }
        })
        .expect("pool workers catch task panics and never panic themselves");
        slots.into_results()
    }
}

/// Pops from the worker's own deque, falling back to stealing from the
/// siblings in index order (first non-empty victim wins). Returns `None`
/// when every deque is empty — the grid is fixed up front, so no new
/// work can appear.
fn next_task(local: &Worker<usize>, stealers: &[Stealer<usize>], wid: usize) -> Option<usize> {
    if let Some(i) = local.pop() {
        return Some(i);
    }
    loop {
        let mut attempted = false;
        for (vid, victim) in stealers.iter().enumerate() {
            if vid == wid {
                continue;
            }
            match victim.steal() {
                crossbeam::deque::Steal::Success(i) => return Some(i),
                crossbeam::deque::Steal::Retry => attempted = true,
                crossbeam::deque::Steal::Empty => {}
            }
        }
        if !attempted {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_index_order() {
        for workers in [1, 2, 4, 7] {
            let pool = Pool::with_workers(workers);
            let out: Vec<usize> = pool
                .run(100, |i| i * 3)
                .into_iter()
                .map(Result::unwrap)
                .collect();
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        Pool::with_workers(8).run(64, |i| {
            counters[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "task {i}");
        }
    }

    #[test]
    fn a_panicking_task_is_isolated() {
        let results = Pool::with_workers(4).run(10, |i| {
            if i == 5 {
                panic!("task five exploded");
            }
            i
        });
        for (i, r) in results.iter().enumerate() {
            if i == 5 {
                let err = r.as_ref().unwrap_err();
                assert_eq!(err.index, 5);
                assert_eq!(err.message, "task five exploded");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
    }

    #[test]
    fn panic_isolation_holds_inline_too() {
        let results = Pool::with_workers(1).run(3, |i| {
            if i == 0 {
                panic!("first");
            }
            i
        });
        assert!(results[0].is_err());
        assert_eq!(results[1], Ok(1));
        assert_eq!(results[2], Ok(2));
    }

    #[test]
    fn skewed_chunks_are_stolen() {
        // All of the slow tasks land in worker 0's seed chunk; the run
        // still finishes because siblings steal them. (On a single-core
        // host this degenerates to timesharing — the assertion is about
        // completion and correctness, not wall-clock.)
        let slow = |i: usize| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i + 1
        };
        let out: Vec<usize> = Pool::with_workers(4)
            .run(32, slow)
            .into_iter()
            .map(Result::unwrap)
            .collect();
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_tiny_grids() {
        assert!(Pool::new().run(0, |i| i).is_empty());
        let one: Vec<_> = Pool::with_workers(16)
            .run(1, |i| i + 42)
            .into_iter()
            .collect();
        assert_eq!(one, vec![Ok(42)]);
    }
}
