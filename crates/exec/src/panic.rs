//! Panic capture: a worker that panics inside a task must not take the
//! pool (or the process) down with it.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A task that panicked, identified by its grid index and carrying the
/// stringified panic payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Index of the panicking task in the grid passed to [`crate::Pool::run`].
    pub index: usize,
    /// The panic payload, stringified (`&str` and `String` payloads are
    /// preserved verbatim; anything else becomes a placeholder).
    pub message: String,
}

impl fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Stringifies a panic payload, preserving `&str`/`String` messages.
pub(crate) fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs task `index`, converting a panic into a [`TaskPanic`].
///
/// `AssertUnwindSafe` is sound here because a panicking task's result
/// slot is never written: no partially-updated state escapes the closure
/// except through `&`-captured types whose own invariants are
/// panic-safe (the sweep pipeline only shares `Session`s, whose caches
/// are lock-guarded and poison-free).
pub(crate) fn run_task<R, F>(f: &F, index: usize) -> Result<R, TaskPanic>
where
    F: Fn(usize) -> R,
{
    catch_unwind(AssertUnwindSafe(|| f(index))).map_err(|payload| TaskPanic {
        index,
        message: payload_message(payload.as_ref()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str_and_string_payloads_are_preserved() {
        let err = run_task(&|_| -> u32 { panic!("static message") }, 3).unwrap_err();
        assert_eq!(err.index, 3);
        assert_eq!(err.message, "static message");
        let err = run_task(&|i| -> u32 { panic!("loop {i} failed") }, 7).unwrap_err();
        assert_eq!(err.message, "loop 7 failed");
        assert_eq!(err.to_string(), "task 7 panicked: loop 7 failed");
    }

    #[test]
    fn non_panicking_tasks_pass_through() {
        assert_eq!(run_task(&|i| i + 1, 9), Ok(10));
    }
}
