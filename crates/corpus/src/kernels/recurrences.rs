//! Kernels dominated by loop-carried recurrences and long chains.

use ncdrf_ddg::{Loop, LoopBuilder, Weight};

fn done(b: LoopBuilder) -> Loop {
    b.finish(Weight::default())
        .expect("hand-written kernel is valid")
}

/// Exponential moving average: `s = alpha*x[i] + beta*s`.
pub fn ema() -> Loop {
    let mut b = LoopBuilder::new("ema");
    let alpha = b.invariant("alpha", 0.2);
    let beta = b.invariant("beta", 0.8);
    let x = b.array_in("x");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let mx = b.mul("MX", lx.now(), alpha);
    let ms = b.reserve_mul("MS");
    let s = b.add("S", mx.now(), ms.now());
    b.bind(ms, [s.prev(1), beta]);
    b.set_init(s, 0.0);
    b.store("ST", z, 0, s.now());
    done(b)
}

/// Gauss–Seidel-flavoured smoothing: `s = 0.5*(s + y[i])`.
pub fn seidel() -> Loop {
    let mut b = LoopBuilder::new("seidel");
    let half = b.invariant("half", 0.5);
    let y = b.array_in("y");
    let z = b.array_out("z");
    let ly = b.load("LY", y, 0);
    let a = b.reserve_add("A");
    let m = b.mul("M", a.now(), half);
    b.bind(a, [ly.now(), m.prev(1)]);
    b.set_init(m, 0.0);
    b.store("ST", z, 0, m.now());
    done(b)
}

/// Two coupled recurrences (damped oscillator step):
/// `v = v - k*x; x = x + h*v`.
pub fn oscillator() -> Loop {
    let mut b = LoopBuilder::new("oscillator");
    let k = b.invariant("k", 0.04);
    let h = b.invariant("h", 0.1);
    let xs = b.array_out("xs");
    let vs = b.array_out("vs");
    let mk = b.reserve_mul("MK");
    let v = b.reserve_sub("V");
    let mh = b.mul("MH", v.now(), h);
    let x = b.reserve_add("X");
    b.bind(mk, [x.prev(1), k]);
    b.bind(v, [v.prev(1), mk.now()]);
    b.bind(x, [x.prev(1), mh.now()]);
    b.set_init(v, 0.0);
    b.set_init(x, 1.0);
    b.store("SX", xs, 0, x.now());
    b.store("SV", vs, 0, v.now());
    done(b)
}

/// A deep dependence chain: 8 serial mul/add stages per iteration, no
/// recurrence — high lifetime spread, deep pipelining.
pub fn chain8() -> Loop {
    let mut b = LoopBuilder::new("chain8");
    let c = b.invariant("c", 1.01);
    let x = b.array_in("x");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let mut prev = lx.now();
    for i in 0..8 {
        let op = if i % 2 == 0 {
            b.mul(format!("M{i}"), prev, c)
        } else {
            b.add(format!("A{i}"), prev, c)
        };
        prev = op.now();
    }
    b.store("S", z, 0, prev);
    done(b)
}

/// Eight fully-independent mul-add lanes — maximal ILP, high pressure.
pub fn wide8() -> Loop {
    let mut b = LoopBuilder::new("wide8");
    let c = b.invariant("c", 0.99);
    let x = b.array_in("x");
    let z = b.array_out("z");
    let mut sums = Vec::new();
    for lane in 0..4 {
        let l = b.load(format!("L{lane}"), x, lane as i64);
        let m = b.mul(format!("M{lane}"), l.now(), c);
        let a = b.add(format!("A{lane}"), m.now(), l.now());
        sums.push(a);
    }
    let t1 = b.add("T1", sums[0].now(), sums[1].now());
    let t2 = b.add("T2", sums[2].now(), sums[3].now());
    let t3 = b.add("T3", t1.now(), t2.now());
    b.store("S", z, 0, t3.now());
    done(b)
}

/// Balanced reduction tree over 8 loaded values.
pub fn tree8() -> Loop {
    let mut b = LoopBuilder::new("tree8");
    let x = b.array_in("x");
    let z = b.array_out("z");
    let loads: Vec<_> = (0..8)
        .map(|k| b.load(format!("L{k}"), x, k as i64))
        .collect();
    let mut level: Vec<_> = loads.iter().map(|l| l.now()).collect();
    let mut n = 0;
    while level.len() > 1 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            let a = b.add(format!("A{n}"), pair[0], pair[1]);
            n += 1;
            next.push(a.now());
        }
        level = next;
    }
    b.store("S", z, 0, level[0]);
    done(b)
}

/// Predator–prey (Lotka–Volterra) Euler step — two coupled nonlinear
/// recurrences with a shared product term:
/// `u' = u + h*(a*u - b*u*v)`, `v' = v + h*(c*u*v - d*v)`.
pub fn lotka() -> Loop {
    let mut b = LoopBuilder::new("lotka");
    let ha = b.invariant("ha", 0.011);
    let hb = b.invariant("hb", 0.004);
    let hc = b.invariant("hc", 0.002);
    let hd = b.invariant("hd", 0.009);
    let us = b.array_out("us");
    let vs = b.array_out("vs");
    let u = b.reserve_add("U");
    let v = b.reserve_add("V");
    let uv = b.reserve_mul("UV");
    b.bind(uv, [u.prev(1), v.prev(1)]);
    let mau = b.reserve_mul("MAU");
    b.bind(mau, [u.prev(1), ha]);
    let mbuv = b.mul("MBUV", uv.now(), hb);
    let du = b.sub("DU", mau.now(), mbuv.now());
    b.bind(u, [u.prev(1), du.now()]);
    let mcuv = b.mul("MCUV", uv.now(), hc);
    let mdv = b.reserve_mul("MDV");
    b.bind(mdv, [v.prev(1), hd]);
    let dv = b.sub("DV", mcuv.now(), mdv.now());
    b.bind(v, [v.prev(1), dv.now()]);
    b.set_init(u, 10.0);
    b.set_init(v, 5.0);
    b.store("SU", us, 0, u.now());
    b.store("SV", vs, 0, v.now());
    done(b)
}

/// Conversion-flavoured kernel (exercises the `Conv` op, which runs on the
/// adder): `z[i] = trunc(x[i]) * s + y[i]`.
pub fn quantize() -> Loop {
    let mut b = LoopBuilder::new("quantize");
    let s = b.invariant("s", 0.125);
    let x = b.array_in("x");
    let y = b.array_in("y");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let ly = b.load("LY", y, 0);
    let c = b.conv("C", lx.now());
    let m = b.mul("M", c.now(), s);
    let a = b.add("A", m.now(), ly.now());
    b.store("S", z, 0, a.now());
    done(b)
}

/// Reciprocal-heavy kernel: `z[i] = a/x[i] + b/y[i]`.
pub fn recip2() -> Loop {
    let mut b = LoopBuilder::new("recip2");
    let a = b.invariant("a", 1.0);
    let c = b.invariant("c", 2.0);
    let x = b.array_in("x");
    let y = b.array_in("y");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let ly = b.load("LY", y, 0);
    let d1 = b.div("D1", a, lx.now());
    let d2 = b.div("D2", c, ly.now());
    let s = b.add("S", d1.now(), d2.now());
    b.store("ST", z, 0, s.now());
    done(b)
}

/// Cholesky-style scaling: `z[i] = (x[i] - s) / d` with invariant `s, d`.
pub fn chol_scale() -> Loop {
    let mut b = LoopBuilder::new("chol_scale");
    let s = b.invariant("s", 0.5);
    let d = b.invariant("d", 2.0);
    let x = b.array_in("x");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let sub = b.sub("SUB", lx.now(), s);
    let div = b.div("DIV", sub.now(), d);
    b.store("ST", z, 0, div.now());
    done(b)
}

/// Horner evaluation of a degree-4 polynomial with invariant
/// coefficients: `z = (((c4*x + c3)*x + c2)*x + c1)*x + c0`.
pub fn horner4() -> Loop {
    let mut b = LoopBuilder::new("horner4");
    let cs: Vec<_> = (0..5)
        .map(|k| b.invariant(format!("c{k}"), (k as f64 + 1.0) * 0.3))
        .collect();
    let x = b.array_in("x");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let mut acc = cs[4];
    for k in (0..4).rev() {
        let m = b.mul(format!("M{k}"), acc, lx.now());
        let a = b.add(format!("A{k}"), m.now(), cs[k]);
        acc = a.now();
    }
    b.store("S", z, 0, acc);
    done(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf_machine::Machine;
    use ncdrf_sched::{modulo_schedule, verify};

    #[test]
    fn all_recurrence_kernels_schedule() {
        let machine = Machine::clustered(3, 1);
        for k in [
            ema(),
            seidel(),
            oscillator(),
            chain8(),
            wide8(),
            tree8(),
            lotka(),
            quantize(),
            recip2(),
            chol_scale(),
            horner4(),
        ] {
            let sched = modulo_schedule(&k, &machine)
                .unwrap_or_else(|e| panic!("{} failed: {e}", k.name()));
            verify(&k, &machine, &sched).unwrap();
        }
    }

    #[test]
    fn chain8_has_long_lifetimes_at_small_ii() {
        use ncdrf_regalloc::{lifetimes, max_live};
        let machine = Machine::clustered(6, 1);
        let k = chain8();
        let sched = modulo_schedule(&k, &machine).unwrap();
        let lts = lifetimes(&k, &machine, &sched).unwrap();
        assert!(max_live(&lts, sched.ii()) >= 8);
    }
}
