//! Kernels modelled on SPEC89 Fortran inner loops (matrix kernels,
//! ODE integrators, signal processing) — the third source population of
//! the register-requirement studies the paper builds on (ref [16]).

use ncdrf_ddg::{Loop, LoopBuilder, Weight};

fn done(b: LoopBuilder) -> Loop {
    b.finish(Weight::default())
        .expect("hand-written kernel is valid")
}

/// Matrix-column update from a matrix-multiply inner loop:
/// `c[i] = c[i] + a[i] * b_k` (b_k invariant across the innermost loop).
pub fn gemm_inner() -> Loop {
    let mut b = LoopBuilder::new("gemm_inner");
    let bk = b.invariant("bk", 1.75);
    let a = b.array_in("a");
    let c = b.array_inout("c");
    let la = b.load("LA", a, 0);
    let lc = b.load("LC", c, 0);
    let m = b.mul("M", la.now(), bk);
    let s = b.add("A", lc.now(), m.now());
    b.store("SC", c, 0, s.now());
    done(b)
}

/// Rank-1 update row: `a[i] = a[i] + x_r * y[i]`.
pub fn rank1_update() -> Loop {
    let mut b = LoopBuilder::new("rank1_update");
    let xr = b.invariant("xr", -0.6);
    let y = b.array_in("y");
    let a = b.array_inout("a");
    let ly = b.load("LY", y, 0);
    let la = b.load("LA", a, 0);
    let m = b.mul("M", ly.now(), xr);
    let s = b.add("A", la.now(), m.now());
    b.store("SA", a, 0, s.now());
    done(b)
}

/// Givens-rotation application to a vector pair:
/// `x' = c*x + s*y; y' = c*y - s*x`.
pub fn givens() -> Loop {
    let mut b = LoopBuilder::new("givens");
    let c = b.invariant("c", 0.8);
    let s = b.invariant("s", 0.6);
    let x = b.array_inout("x");
    let y = b.array_inout("y");
    let lx = b.load("LX", x, 0);
    let ly = b.load("LY", y, 0);
    let cx = b.mul("CX", lx.now(), c);
    let sy = b.mul("SY", ly.now(), s);
    let cy = b.mul("CY", ly.now(), c);
    let sx = b.mul("SX", lx.now(), s);
    let nx = b.add("NX", cx.now(), sy.now());
    let ny = b.sub("NY", cy.now(), sx.now());
    b.store("STX", x, 0, nx.now());
    b.store("STY", y, 0, ny.now());
    done(b)
}

/// Runge–Kutta-2 style state advance with two derivative evaluations
/// folded into invariant-coefficient mul/adds:
/// `k1 = f*u; um = u + h2*k1; k2 = f*um; u' = u + h*k2`.
pub fn rk2_step() -> Loop {
    let mut b = LoopBuilder::new("rk2_step");
    let f = b.invariant("f", -0.35);
    let h2 = b.invariant("h2", 0.05);
    let h = b.invariant("h", 0.1);
    let us = b.array_out("us");
    let u = b.reserve_add("U");
    let k1 = b.reserve_mul("K1");
    b.bind(k1, [u.prev(1), f]);
    let hk1 = b.mul("HK1", k1.now(), h2);
    let um = b.reserve_add("UM");
    b.bind(um, [u.prev(1), hk1.now()]);
    let k2 = b.mul("K2", um.now(), f);
    let hk2 = b.mul("HK2", k2.now(), h);
    b.bind(u, [u.prev(1), hk2.now()]);
    b.set_init(u, 1.0);
    b.store("SU", us, 0, u.now());
    done(b)
}

/// Polynomial error accumulation from a spectral code:
/// `e += (p[i] - q[i])^2 / w[i]`.
pub fn weighted_error() -> Loop {
    let mut b = LoopBuilder::new("weighted_error");
    let p = b.array_in("p");
    let q = b.array_in("q");
    let w = b.array_in("w");
    let z = b.array_out("z");
    let lp = b.load("LP", p, 0);
    let lq = b.load("LQ", q, 0);
    let lw = b.load("LW", w, 0);
    let d = b.sub("D", lp.now(), lq.now());
    let sq = b.mul("SQ", d.now(), d.now());
    let dv = b.div("DV", sq.now(), lw.now());
    let e = b.reserve_add("E");
    b.bind(e, [dv.now(), e.prev(1)]);
    b.set_init(e, 0.0);
    b.store("SE", z, 0, e.now());
    done(b)
}

/// Gather-free sparse-like row combine over three shifted streams:
/// `r[i] = v0[i]*x[i-1] + v1[i]*x[i] + v2[i]*x[i+1]` with a running sum.
pub fn band_accumulate() -> Loop {
    let mut b = LoopBuilder::new("band_accumulate");
    let v0 = b.array_in("v0");
    let v1 = b.array_in("v1");
    let v2 = b.array_in("v2");
    let x = b.array_in("x");
    let r = b.array_out("r");
    let z = b.array_out("z");
    let l0 = b.load("L0", v0, 0);
    let l1 = b.load("L1", v1, 0);
    let l2 = b.load("L2", v2, 0);
    let xm = b.load("XM", x, -1);
    let x0 = b.load("X0", x, 0);
    let xp = b.load("XP", x, 1);
    let m0 = b.mul("M0", l0.now(), xm.now());
    let m1 = b.mul("M1", l1.now(), x0.now());
    let m2 = b.mul("M2", l2.now(), xp.now());
    let a1 = b.add("A1", m0.now(), m1.now());
    let a2 = b.add("A2", a1.now(), m2.now());
    let acc = b.reserve_add("ACC");
    b.bind(acc, [a2.now(), acc.prev(1)]);
    b.set_init(acc, 0.0);
    b.store("SR", r, 0, a2.now());
    b.store("SZ", z, 0, acc.now());
    done(b)
}

/// Newton–Raphson reciprocal refinement: `r' = r*(2 - d*r)` iterated on a
/// register recurrence, seeded per element? — kept as a pure recurrence
/// loop (division-free reciprocal pipeline).
pub fn newton_recip() -> Loop {
    let mut b = LoopBuilder::new("newton_recip");
    let two = b.invariant("two", 2.0);
    let d = b.invariant("d", 3.0);
    let rs = b.array_out("rs");
    let r = b.reserve_mul("R");
    let dr = b.reserve_mul("DR");
    b.bind(dr, [r.prev(1), d]);
    let t = b.sub("T", two, dr.now());
    b.bind(r, [r.prev(1), t.now()]);
    b.set_init(r, 0.3);
    b.store("SR", rs, 0, r.now());
    done(b)
}

/// Geometric-mean pipeline with a conversion: `g *= trunc(x[i]) + c`.
pub fn geo_conv() -> Loop {
    let mut b = LoopBuilder::new("geo_conv");
    let c = b.invariant("c", 2.0);
    let x = b.array_in("x");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let cv = b.conv("CV", lx.now());
    let a = b.add("A", cv.now(), c);
    let g = b.reserve_mul("G");
    b.bind(g, [a.now(), g.prev(1)]);
    b.set_init(g, 1.0);
    b.store("SG", z, 0, g.now());
    done(b)
}

/// Softmax-denominator style pass without exp (rational surrogate):
/// `s += x[i] / (x[i] + k)`.
pub fn rational_accum() -> Loop {
    let mut b = LoopBuilder::new("rational_accum");
    let k = b.invariant("k", 1.0);
    let x = b.array_in("x");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let dn = b.add("DN", lx.now(), k);
    let q = b.div("Q", lx.now(), dn.now());
    let s = b.reserve_add("S");
    b.bind(s, [q.now(), s.prev(1)]);
    b.set_init(s, 0.0);
    b.store("SS", z, 0, s.now());
    done(b)
}

/// Pairwise max-free envelope update via averaging (smooth envelope):
/// `e' = 0.5*(e + x[i]) + c*(x[i] - e)`.
pub fn envelope() -> Loop {
    let mut b = LoopBuilder::new("envelope");
    let half = b.invariant("half", 0.5);
    let c = b.invariant("c", 0.25);
    let x = b.array_in("x");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let e = b.reserve_add("E");
    let s1 = b.reserve_add("S1");
    b.bind(s1, [e.prev(1), lx.now()]);
    let m1 = b.mul("M1", s1.now(), half);
    let d = b.reserve_sub("D");
    b.bind(d, [lx.now(), e.prev(1)]);
    let m2 = b.mul("M2", d.now(), c);
    b.bind(e, [m1.now(), m2.now()]);
    b.set_init(e, 0.0);
    b.store("SE", z, 0, e.now());
    done(b)
}

/// Strided dual-stream blend (texture-filter style):
/// `o[i] = w*(a[2i-ish] stand-in: a[i] + a[i+2]) + (1-w)*b[i]`.
pub fn blend2() -> Loop {
    let mut b = LoopBuilder::new("blend2");
    let w = b.invariant("w", 0.7);
    let wi = b.invariant("wi", 0.3);
    let a = b.array_in("a");
    let bb = b.array_in("b");
    let o = b.array_out("o");
    let a0 = b.load("A0", a, 0);
    let a2 = b.load("A2", a, 2);
    let lb = b.load("LB", bb, 0);
    let s = b.add("S", a0.now(), a2.now());
    let m1 = b.mul("M1", s.now(), w);
    let m2 = b.mul("M2", lb.now(), wi);
    let r = b.add("R", m1.now(), m2.now());
    b.store("SO", o, 0, r.now());
    done(b)
}

/// A 12-op balanced expression from an equation-of-state update, heavier
/// on the multiplier side.
pub fn eos_heavy() -> Loop {
    let mut b = LoopBuilder::new("eos_heavy");
    let c1 = b.invariant("c1", 1.1);
    let c2 = b.invariant("c2", 0.9);
    let p = b.array_in("p");
    let v = b.array_in("v");
    let t = b.array_in("t");
    let out = b.array_out("out");
    let lp = b.load("LP", p, 0);
    let lv = b.load("LV", v, 0);
    let lt = b.load("LT", t, 0);
    let pv = b.mul("PV", lp.now(), lv.now());
    let vt = b.mul("VT", lv.now(), lt.now());
    let pt = b.mul("PT", lp.now(), lt.now());
    let q1 = b.mul("Q1", pv.now(), c1);
    let q2 = b.mul("Q2", vt.now(), c2);
    let s1 = b.add("S1", q1.now(), q2.now());
    let s2 = b.add("S2", s1.now(), pt.now());
    let q3 = b.mul("Q3", s2.now(), s2.now());
    let s3 = b.sub("S3", q3.now(), pv.now());
    b.store("SO", out, 0, s3.now());
    done(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf_machine::Machine;
    use ncdrf_sched::{modulo_schedule, verify};

    fn all_spec() -> Vec<Loop> {
        vec![
            gemm_inner(),
            rank1_update(),
            givens(),
            rk2_step(),
            weighted_error(),
            band_accumulate(),
            newton_recip(),
            geo_conv(),
            rational_accum(),
            envelope(),
            blend2(),
            eos_heavy(),
        ]
    }

    #[test]
    fn all_spec_kernels_schedule_on_both_latencies() {
        for lat in [3, 6] {
            let machine = Machine::clustered(lat, 1);
            for k in all_spec() {
                let sched = modulo_schedule(&k, &machine)
                    .unwrap_or_else(|e| panic!("{} (L{lat}) failed: {e}", k.name()));
                verify(&k, &machine, &sched).unwrap();
            }
        }
    }

    #[test]
    fn in_place_kernels_execute_equivalently() {
        use ncdrf_regalloc::{allocate_unified, lifetimes};
        let machine = Machine::clustered(3, 1);
        for k in [gemm_inner(), rank1_update(), givens()] {
            let sched = modulo_schedule(&k, &machine).unwrap();
            let lts = lifetimes(&k, &machine, &sched).unwrap();
            let alloc = allocate_unified(&lts, sched.ii());
            let binding = ncdrf_vliw::Binding::unified(&lts, &alloc);
            ncdrf_vliw::check_equivalence(&k, &machine, &sched, &binding, 16)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name()));
        }
    }

    #[test]
    fn recurrence_kernels_bound_ii() {
        use ncdrf_sched::rec_mii;
        let machine = Machine::clustered(3, 1);
        // newton_recip: r -> dr -> t -> r cycle of distance 1 with two
        // muls and a sub: RecMII = 3+3+3 = 9... the cycle is r=(prev)
        // dr(mul,3) -> t(sub,3) -> r(mul,3): total latency 9 over
        // distance... dr uses r.prev(1), r uses t.now(): cycle distance 1
        // -> RecMII >= 9? The tightest cycle is r -> (dist 1) dr -> t -> r.
        let m = rec_mii(&newton_recip(), &machine).unwrap();
        assert!(m >= 9, "newton_recip RecMII {m}");
    }
}
