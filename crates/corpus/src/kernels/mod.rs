//! Hand-written named kernels: the curated backbone of the corpus.
//!
//! These model the floating-point inner loops the paper drew from the
//! Perfect Club (and its companions, the Livermore Loops and SPEC89
//! Fortran): BLAS-1 vector operations, Livermore fragments, stencils and
//! filters, and recurrence/ILP stress kernels. Every kernel is a valid,
//! executable [`Loop`] with concrete invariant values, so the whole corpus
//! can run through the `ncdrf-vliw` equivalence oracle.

pub mod blas;
pub mod livermore;
pub mod recurrences;
pub mod spec;
pub mod stencils;

use ncdrf_ddg::Loop;

/// All named kernels, in a fixed order.
pub fn all() -> Vec<Loop> {
    vec![
        // BLAS-1 family.
        blas::daxpy(),
        blas::axpby(),
        blas::dot(),
        blas::vadd(),
        blas::vscale(),
        blas::triad(),
        blas::vdiv(),
        blas::normalize(),
        blas::vsum(),
        blas::vprod(),
        blas::sumsq(),
        blas::sqdist(),
        blas::harmonic(),
        blas::sum_and_sumsq(),
        blas::lerp(),
        // Livermore-style fragments.
        livermore::hydro(),
        livermore::tridiag(),
        livermore::state(),
        livermore::first_sum(),
        livermore::first_diff(),
        livermore::iccg(),
        livermore::banded_matvec(),
        livermore::forward_subst(),
        // Stencils and filters.
        stencils::stencil3(),
        stencils::stencil5(),
        stencils::fir4(),
        stencils::heat(),
        stencils::wave(),
        stencils::cmul(),
        stencils::butterfly(),
        // Recurrence / ILP stress kernels.
        recurrences::ema(),
        recurrences::seidel(),
        recurrences::oscillator(),
        recurrences::chain8(),
        recurrences::wide8(),
        recurrences::tree8(),
        recurrences::lotka(),
        recurrences::quantize(),
        recurrences::recip2(),
        recurrences::chol_scale(),
        recurrences::horner4(),
        // SPEC89-Fortran-style kernels.
        spec::gemm_inner(),
        spec::rank1_update(),
        spec::givens(),
        spec::rk2_step(),
        spec::weighted_error(),
        spec::band_accumulate(),
        spec::newton_recip(),
        spec::geo_conv(),
        spec::rational_accum(),
        spec::envelope(),
        spec::blend2(),
        spec::eos_heavy(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_are_unique() {
        let ks = all();
        let names: HashSet<_> = ks.iter().map(|k| k.name().to_owned()).collect();
        assert_eq!(names.len(), ks.len());
    }

    #[test]
    fn kernel_count() {
        assert_eq!(all().len(), 53);
    }

    #[test]
    fn every_kernel_executes_equivalently() {
        // End-to-end sanity via the sequential evaluator (cheap; the
        // pipelined oracle is exercised in the vliw and core crates).
        for k in all() {
            let _ = k.stats();
        }
    }
}
