//! Kernels modelled on the Lawrence Livermore Loops (the paper's loop
//! population was drawn from kindred scientific codes).

use ncdrf_ddg::{Loop, LoopBuilder, Weight};

fn done(b: LoopBuilder) -> Loop {
    b.finish(Weight::default())
        .expect("hand-written kernel is valid")
}

/// LL kernel 1 (hydro fragment):
/// `x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])`.
pub fn hydro() -> Loop {
    let mut b = LoopBuilder::new("ll1_hydro");
    let q = b.invariant("q", 0.5);
    let r = b.invariant("r", 1.5);
    let t = b.invariant("t", 0.25);
    let y = b.array_in("y");
    let z = b.array_in("z");
    let x = b.array_out("x");
    let lz0 = b.load("LZ0", z, 10);
    let lz1 = b.load("LZ1", z, 11);
    let ly = b.load("LY", y, 0);
    let m1 = b.mul("M1", lz0.now(), r);
    let m2 = b.mul("M2", lz1.now(), t);
    let a1 = b.add("A1", m1.now(), m2.now());
    let m3 = b.mul("M3", ly.now(), a1.now());
    let a2 = b.add("A2", m3.now(), q);
    b.store("SX", x, 0, a2.now());
    done(b)
}

/// LL kernel 5 (tri-diagonal elimination, below diagonal):
/// `x[i] = z[i]*(y[i] - x[i-1])` — a genuine loop-carried recurrence
/// through both a register and memory.
pub fn tridiag() -> Loop {
    let mut b = LoopBuilder::new("ll5_tridiag");
    let y = b.array_in("y");
    let z = b.array_in("z");
    let x = b.array_inout("x");
    let ly = b.load("LY", y, 0);
    let lz = b.load("LZ", z, 0);
    let d = b.reserve_sub("D");
    let m = b.reserve_mul("M");
    b.bind(d, [ly.now(), m.prev(1)]);
    b.bind(m, [lz.now(), d.now()]);
    b.set_init(m, 0.0);
    b.store("SX", x, 0, m.now());
    done(b)
}

/// LL kernel 7 (equation of state fragment) — a wide mul/add expression:
/// `x[k] = u[k] + r*(z[k] + r*y[k]) + t*(u[k+3] + r*(u[k+2] + r*u[k+1]))`.
pub fn state() -> Loop {
    let mut b = LoopBuilder::new("ll7_state");
    let r = b.invariant("r", 0.75);
    let t = b.invariant("t", 1.25);
    let u = b.array_in("u");
    let y = b.array_in("y");
    let z = b.array_in("z");
    let x = b.array_out("x");
    let lu0 = b.load("LU0", u, 0);
    let lu1 = b.load("LU1", u, 1);
    let lu2 = b.load("LU2", u, 2);
    let lu3 = b.load("LU3", u, 3);
    let ly = b.load("LY", y, 0);
    let lz = b.load("LZ", z, 0);
    let m1 = b.mul("M1", ly.now(), r);
    let a1 = b.add("A1", lz.now(), m1.now());
    let m2 = b.mul("M2", a1.now(), r);
    let a2 = b.add("A2", lu0.now(), m2.now());
    let m3 = b.mul("M3", lu1.now(), r);
    let a3 = b.add("A3", lu2.now(), m3.now());
    let m4 = b.mul("M4", a3.now(), r);
    let a4 = b.add("A4", lu3.now(), m4.now());
    let m5 = b.mul("M5", a4.now(), t);
    let a5 = b.add("A5", a2.now(), m5.now());
    b.store("SX", x, 0, a5.now());
    done(b)
}

/// LL kernel 11 (first sum): `x[k] = x[k-1] + y[k]` — prefix sum kept in a
/// register recurrence and stored each iteration.
pub fn first_sum() -> Loop {
    let mut b = LoopBuilder::new("ll11_first_sum");
    let y = b.array_in("y");
    let x = b.array_out("x");
    let ly = b.load("LY", y, 0);
    let s = b.reserve_add("S");
    b.bind(s, [ly.now(), s.prev(1)]);
    b.set_init(s, 0.0);
    b.store("SX", x, 0, s.now());
    done(b)
}

/// LL kernel 12 (first difference): `x[k] = y[k+1] - y[k]`.
pub fn first_diff() -> Loop {
    let mut b = LoopBuilder::new("ll12_first_diff");
    let y = b.array_in("y");
    let x = b.array_out("x");
    let l1 = b.load("L1", y, 1);
    let l0 = b.load("L0", y, 0);
    let d = b.sub("D", l1.now(), l0.now());
    b.store("SX", x, 0, d.now());
    done(b)
}

/// A fragment of LL kernel 2 (ICCG, incomplete Cholesky conjugate
/// gradient): `x[i] = x[i] - v[i]*x[i+1]` over strided data, here with an
/// in-place update and a forward read.
pub fn iccg() -> Loop {
    let mut b = LoopBuilder::new("ll2_iccg");
    let v = b.array_in("v");
    let x = b.array_inout("x");
    let lv = b.load("LV", v, 0);
    let lx0 = b.load("LX0", x, 0);
    let lx1 = b.load("LX1", x, 1);
    let m = b.mul("M", lv.now(), lx1.now());
    let d = b.sub("D", lx0.now(), m.now());
    let st = b.store("SX", x, 0, d.now());
    // The store of iteration i writes x[i]; iteration i+1 reads x[i+1]
    // (untouched) and x[i+1-1] = x[i]? No: it loads x[i+1] and x[i+1+1];
    // neither aliases the store of iteration i+1's past... but x[i] written
    // here is read as LX0 of no later iteration and as LX1 of iteration
    // i-1 (earlier). Keep a conservative ordering edge so stores stay
    // behind the loads of the same address one iteration later.
    b.mem_dep(st, lx0, 1);
    done(b)
}

/// Banded (tri-diagonal) matrix-vector product:
/// `y[i] = a[i]*x[i-1] + b[i]*x[i] + c[i]*x[i+1]`.
pub fn banded_matvec() -> Loop {
    let mut b = LoopBuilder::new("banded_matvec");
    let a = b.array_in("a");
    let bb = b.array_in("b");
    let c = b.array_in("c");
    let x = b.array_in("x");
    let y = b.array_out("y");
    let la = b.load("LA", a, 0);
    let lb = b.load("LB", bb, 0);
    let lc = b.load("LC", c, 0);
    let lxm = b.load("LXM", x, -1);
    let lx0 = b.load("LX0", x, 0);
    let lxp = b.load("LXP", x, 1);
    let m1 = b.mul("M1", la.now(), lxm.now());
    let m2 = b.mul("M2", lb.now(), lx0.now());
    let m3 = b.mul("M3", lc.now(), lxp.now());
    let a1 = b.add("A1", m1.now(), m2.now());
    let a2 = b.add("A2", a1.now(), m3.now());
    b.store("SY", y, 0, a2.now());
    done(b)
}

/// Forward substitution step: `x[i] = (y[i] - s[i]*x[i-1]) / d[i]` — a
/// recurrence through a subtraction and a division.
pub fn forward_subst() -> Loop {
    let mut b = LoopBuilder::new("forward_subst");
    let y = b.array_in("y");
    let s = b.array_in("s");
    let dd = b.array_in("d");
    let x = b.array_out("x");
    let ly = b.load("LY", y, 0);
    let ls = b.load("LS", s, 0);
    let ld = b.load("LD", dd, 0);
    let m = b.reserve_mul("M");
    let sub = b.sub("SUB", ly.now(), m.now());
    let div = b.div("DIV", sub.now(), ld.now());
    b.bind(m, [ls.now(), div.prev(1)]);
    b.set_init(div, 0.0);
    b.store("SX", x, 0, div.now());
    done(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf_machine::Machine;
    use ncdrf_sched::{modulo_schedule, verify};

    #[test]
    fn all_livermore_kernels_schedule() {
        let machine = Machine::clustered(3, 1);
        for k in [
            hydro(),
            tridiag(),
            state(),
            first_sum(),
            first_diff(),
            iccg(),
            banded_matvec(),
            forward_subst(),
        ] {
            let sched = modulo_schedule(&k, &machine)
                .unwrap_or_else(|e| panic!("{} failed: {e}", k.name()));
            verify(&k, &machine, &sched).unwrap();
        }
    }

    #[test]
    fn recurrences_bound_the_ii() {
        // tridiag has a sub(lat) + mul(lat) cycle of distance 1: RecMII =
        // 2*lat.
        use ncdrf_sched::rec_mii;
        let machine = Machine::clustered(3, 1);
        assert_eq!(rec_mii(&tridiag(), &machine).unwrap(), 6);
        let machine6 = Machine::clustered(6, 1);
        assert_eq!(rec_mii(&tridiag(), &machine6).unwrap(), 12);
    }
}
