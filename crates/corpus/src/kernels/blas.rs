//! BLAS-1-style vector kernels.

use ncdrf_ddg::{Loop, LoopBuilder, Weight};

fn done(b: LoopBuilder) -> Loop {
    b.finish(Weight::default())
        .expect("hand-written kernel is valid")
}

/// `z[i] = a*x[i] + y[i]` — the canonical daxpy.
pub fn daxpy() -> Loop {
    let mut b = LoopBuilder::new("daxpy");
    let a = b.invariant("a", 2.5);
    let x = b.array_in("x");
    let y = b.array_in("y");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let ly = b.load("LY", y, 0);
    let m = b.mul("M", lx.now(), a);
    let s = b.add("A", m.now(), ly.now());
    b.store("S", z, 0, s.now());
    done(b)
}

/// `z[i] = a*x[i] + b*y[i]` — two scaled streams.
pub fn axpby() -> Loop {
    let mut b = LoopBuilder::new("axpby");
    let ca = b.invariant("ca", 2.0);
    let cb = b.invariant("cb", -0.75);
    let x = b.array_in("x");
    let y = b.array_in("y");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let ly = b.load("LY", y, 0);
    let mx = b.mul("MX", lx.now(), ca);
    let my = b.mul("MY", ly.now(), cb);
    let s = b.add("A", mx.now(), my.now());
    b.store("S", z, 0, s.now());
    done(b)
}

/// `s += x[i] * y[i]` — dot product (distance-1 add recurrence).
pub fn dot() -> Loop {
    let mut b = LoopBuilder::new("dot");
    let x = b.array_in("x");
    let y = b.array_in("y");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let ly = b.load("LY", y, 0);
    let m = b.mul("M", lx.now(), ly.now());
    let s = b.reserve_add("S");
    b.bind(s, [m.now(), s.prev(1)]);
    b.set_init(s, 0.0);
    b.store("ST", z, 0, s.now());
    done(b)
}

/// `z[i] = x[i] + y[i]` — vector addition.
pub fn vadd() -> Loop {
    let mut b = LoopBuilder::new("vadd");
    let x = b.array_in("x");
    let y = b.array_in("y");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let ly = b.load("LY", y, 0);
    let s = b.add("A", lx.now(), ly.now());
    b.store("S", z, 0, s.now());
    done(b)
}

/// `z[i] = a * x[i]` — vector scaling.
pub fn vscale() -> Loop {
    let mut b = LoopBuilder::new("vscale");
    let a = b.invariant("a", 1.25);
    let x = b.array_in("x");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let m = b.mul("M", lx.now(), a);
    b.store("S", z, 0, m.now());
    done(b)
}

/// `a[i] = b[i] + s*c[i]` — the STREAM triad.
pub fn triad() -> Loop {
    let mut b = LoopBuilder::new("triad");
    let s = b.invariant("s", 3.0);
    let bb = b.array_in("b");
    let c = b.array_in("c");
    let a = b.array_out("a");
    let lb = b.load("LB", bb, 0);
    let lc = b.load("LC", c, 0);
    let m = b.mul("M", lc.now(), s);
    let t = b.add("A", lb.now(), m.now());
    b.store("S", a, 0, t.now());
    done(b)
}

/// `z[i] = x[i] / y[i]` — elementwise division.
pub fn vdiv() -> Loop {
    let mut b = LoopBuilder::new("vdiv");
    let x = b.array_in("x");
    let y = b.array_in("y");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let ly = b.load("LY", y, 0);
    let d = b.div("D", lx.now(), ly.now());
    b.store("S", z, 0, d.now());
    done(b)
}

/// `z[i] = x[i] / nrm` — normalisation by a loop-invariant.
pub fn normalize() -> Loop {
    let mut b = LoopBuilder::new("normalize");
    let nrm = b.invariant("nrm", 4.0);
    let x = b.array_in("x");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let d = b.div("D", lx.now(), nrm);
    b.store("S", z, 0, d.now());
    done(b)
}

/// `s += x[i]` — sum reduction.
pub fn vsum() -> Loop {
    let mut b = LoopBuilder::new("vsum");
    let x = b.array_in("x");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let s = b.reserve_add("S");
    b.bind(s, [lx.now(), s.prev(1)]);
    b.set_init(s, 0.0);
    b.store("ST", z, 0, s.now());
    done(b)
}

/// `p *= x[i]` — product reduction.
pub fn vprod() -> Loop {
    let mut b = LoopBuilder::new("vprod");
    let x = b.array_in("x");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let p = b.reserve_mul("P");
    b.bind(p, [lx.now(), p.prev(1)]);
    b.set_init(p, 1.0);
    b.store("ST", z, 0, p.now());
    done(b)
}

/// `s += x[i]*x[i]` — sum of squares.
pub fn sumsq() -> Loop {
    let mut b = LoopBuilder::new("sumsq");
    let x = b.array_in("x");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let m = b.mul("M", lx.now(), lx.now());
    let s = b.reserve_add("S");
    b.bind(s, [m.now(), s.prev(1)]);
    b.set_init(s, 0.0);
    b.store("ST", z, 0, s.now());
    done(b)
}

/// `s += (x[i]-y[i])^2` — squared Euclidean distance.
pub fn sqdist() -> Loop {
    let mut b = LoopBuilder::new("sqdist");
    let x = b.array_in("x");
    let y = b.array_in("y");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let ly = b.load("LY", y, 0);
    let d = b.sub("D", lx.now(), ly.now());
    let m = b.mul("M", d.now(), d.now());
    let s = b.reserve_add("S");
    b.bind(s, [m.now(), s.prev(1)]);
    b.set_init(s, 0.0);
    b.store("ST", z, 0, s.now());
    done(b)
}

/// `s += 1/x[i]` — harmonic sum (division feeding a reduction).
pub fn harmonic() -> Loop {
    let mut b = LoopBuilder::new("harmonic");
    let one = b.invariant("one", 1.0);
    let x = b.array_in("x");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let d = b.div("D", one, lx.now());
    let s = b.reserve_add("S");
    b.bind(s, [d.now(), s.prev(1)]);
    b.set_init(s, 0.0);
    b.store("ST", z, 0, s.now());
    done(b)
}

/// Two simultaneous reductions: `s1 += x[i]`, `s2 += x[i]^2`.
pub fn sum_and_sumsq() -> Loop {
    let mut b = LoopBuilder::new("sum_and_sumsq");
    let x = b.array_in("x");
    let z1 = b.array_out("z1");
    let z2 = b.array_out("z2");
    let lx = b.load("LX", x, 0);
    let s1 = b.reserve_add("S1");
    b.bind(s1, [lx.now(), s1.prev(1)]);
    let m = b.mul("M", lx.now(), lx.now());
    let s2 = b.reserve_add("S2");
    b.bind(s2, [m.now(), s2.prev(1)]);
    b.store("ST1", z1, 0, s1.now());
    b.store("ST2", z2, 0, s2.now());
    done(b)
}

/// `z[i] = x[i] + t*(y[i] - x[i])` — linear interpolation.
pub fn lerp() -> Loop {
    let mut b = LoopBuilder::new("lerp");
    let t = b.invariant("t", 0.3);
    let x = b.array_in("x");
    let y = b.array_in("y");
    let z = b.array_out("z");
    let lx = b.load("LX", x, 0);
    let ly = b.load("LY", y, 0);
    let d = b.sub("D", ly.now(), lx.now());
    let m = b.mul("M", d.now(), t);
    let s = b.add("A", lx.now(), m.now());
    b.store("S", z, 0, s.now());
    done(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_blas_kernels_are_valid_and_named() {
        let ks = [
            daxpy(),
            axpby(),
            dot(),
            vadd(),
            vscale(),
            triad(),
            vdiv(),
            normalize(),
            vsum(),
            vprod(),
            sumsq(),
            sqdist(),
            harmonic(),
            sum_and_sumsq(),
            lerp(),
        ];
        for k in &ks {
            assert!(!k.name().is_empty());
            assert!(!k.ops().is_empty());
        }
    }

    #[test]
    fn reductions_have_recurrences() {
        for k in [dot(), vsum(), vprod(), sumsq(), sqdist(), harmonic()] {
            let has_rec = k
                .iter_ops()
                .flat_map(|(_, op)| op.inputs().iter())
                .any(|v| matches!(v.op(), Some((_, d)) if d > 0));
            assert!(has_rec, "{} should carry a recurrence", k.name());
        }
    }
}
