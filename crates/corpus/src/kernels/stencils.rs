//! Stencil and filter kernels (spatial reuse, wide fan-in).

use ncdrf_ddg::{Loop, LoopBuilder, Weight};

fn done(b: LoopBuilder) -> Loop {
    b.finish(Weight::default())
        .expect("hand-written kernel is valid")
}

/// 3-point average: `z[i] = (x[i-1] + x[i] + x[i+1]) * third`.
pub fn stencil3() -> Loop {
    let mut b = LoopBuilder::new("stencil3");
    let third = b.invariant("third", 1.0 / 3.0);
    let x = b.array_in("x");
    let z = b.array_out("z");
    let lm = b.load("LM", x, -1);
    let l0 = b.load("L0", x, 0);
    let lp = b.load("LP", x, 1);
    let a1 = b.add("A1", lm.now(), l0.now());
    let a2 = b.add("A2", a1.now(), lp.now());
    let m = b.mul("M", a2.now(), third);
    b.store("S", z, 0, m.now());
    done(b)
}

/// 5-point weighted stencil:
/// `z[i] = c0*x[i] + c1*(x[i-1]+x[i+1]) + c2*(x[i-2]+x[i+2])`.
pub fn stencil5() -> Loop {
    let mut b = LoopBuilder::new("stencil5");
    let c0 = b.invariant("c0", 0.5);
    let c1 = b.invariant("c1", 0.25);
    let c2 = b.invariant("c2", 0.125);
    let x = b.array_in("x");
    let z = b.array_out("z");
    let lm2 = b.load("LM2", x, -2);
    let lm1 = b.load("LM1", x, -1);
    let l0 = b.load("L0", x, 0);
    let lp1 = b.load("LP1", x, 1);
    let lp2 = b.load("LP2", x, 2);
    let s1 = b.add("S1", lm1.now(), lp1.now());
    let s2 = b.add("S2", lm2.now(), lp2.now());
    let m0 = b.mul("M0", l0.now(), c0);
    let m1 = b.mul("M1", s1.now(), c1);
    let m2 = b.mul("M2", s2.now(), c2);
    let a1 = b.add("A1", m0.now(), m1.now());
    let a2 = b.add("A2", a1.now(), m2.now());
    b.store("S", z, 0, a2.now());
    done(b)
}

/// 4-tap FIR filter: `y[i] = sum_k c_k * x[i+k]`.
pub fn fir4() -> Loop {
    let mut b = LoopBuilder::new("fir4");
    let c: Vec<_> = (0..4)
        .map(|k| b.invariant(format!("c{k}"), 0.1 * (k + 1) as f64))
        .collect();
    let x = b.array_in("x");
    let y = b.array_out("y");
    let loads: Vec<_> = (0..4)
        .map(|k| b.load(format!("L{k}"), x, k as i64))
        .collect();
    let m: Vec<_> = (0..4)
        .map(|k| b.mul(format!("M{k}"), loads[k].now(), c[k]))
        .collect();
    let a1 = b.add("A1", m[0].now(), m[1].now());
    let a2 = b.add("A2", m[2].now(), m[3].now());
    let a3 = b.add("A3", a1.now(), a2.now());
    b.store("S", y, 0, a3.now());
    done(b)
}

/// Explicit heat-equation step:
/// `u1[i] = u[i] + k*(u[i-1] - 2u[i] + u[i+1])`.
pub fn heat() -> Loop {
    let mut b = LoopBuilder::new("heat");
    let k = b.invariant("k", 0.1);
    let two = b.invariant("two", 2.0);
    let u = b.array_in("u");
    let u1 = b.array_out("u1");
    let lm = b.load("LM", u, -1);
    let l0 = b.load("L0", u, 0);
    let lp = b.load("LP", u, 1);
    let m2 = b.mul("M2", l0.now(), two);
    let s1 = b.add("S1", lm.now(), lp.now());
    let lap = b.sub("LAP", s1.now(), m2.now());
    let mk = b.mul("MK", lap.now(), k);
    let a = b.add("A", l0.now(), mk.now());
    b.store("S", u1, 0, a.now());
    done(b)
}

/// Wave-equation leapfrog update:
/// `un[i] = 2u[i] - uo[i] + c*(u[i+1] - 2u[i] + u[i-1])`.
pub fn wave() -> Loop {
    let mut b = LoopBuilder::new("wave");
    let c = b.invariant("c", 0.09);
    let two = b.invariant("two", 2.0);
    let u = b.array_in("u");
    let uo = b.array_in("uo");
    let un = b.array_out("un");
    let lm = b.load("LM", u, -1);
    let l0 = b.load("L0", u, 0);
    let lp = b.load("LP", u, 1);
    let lo = b.load("LO", uo, 0);
    let m2 = b.mul("M2", l0.now(), two);
    let s1 = b.add("S1", lm.now(), lp.now());
    let lap = b.sub("LAP", s1.now(), m2.now());
    let mc = b.mul("MC", lap.now(), c);
    let t1 = b.sub("T1", m2.now(), lo.now());
    let t2 = b.add("T2", t1.now(), mc.now());
    b.store("S", un, 0, t2.now());
    done(b)
}

/// Complex multiply over split re/im arrays:
/// `zr = xr*yr - xi*yi`, `zi = xr*yi + xi*yr`.
pub fn cmul() -> Loop {
    let mut b = LoopBuilder::new("cmul");
    let xr = b.array_in("xr");
    let xi = b.array_in("xi");
    let yr = b.array_in("yr");
    let yi = b.array_in("yi");
    let zr = b.array_out("zr");
    let zi = b.array_out("zi");
    let lxr = b.load("LXR", xr, 0);
    let lxi = b.load("LXI", xi, 0);
    let lyr = b.load("LYR", yr, 0);
    let lyi = b.load("LYI", yi, 0);
    let m1 = b.mul("M1", lxr.now(), lyr.now());
    let m2 = b.mul("M2", lxi.now(), lyi.now());
    let m3 = b.mul("M3", lxr.now(), lyi.now());
    let m4 = b.mul("M4", lxi.now(), lyr.now());
    let sr = b.sub("SR", m1.now(), m2.now());
    let si = b.add("SI", m3.now(), m4.now());
    b.store("SZR", zr, 0, sr.now());
    b.store("SZI", zi, 0, si.now());
    done(b)
}

/// FFT-style butterfly with invariant twiddle factors:
/// `ar = xr + (wr*yr - wi*yi)`, `ai = xi + (wr*yi + wi*yr)`.
pub fn butterfly() -> Loop {
    let mut b = LoopBuilder::new("butterfly");
    let wr = b.invariant("wr", std::f64::consts::FRAC_1_SQRT_2);
    let wi = b.invariant("wi", -std::f64::consts::FRAC_1_SQRT_2);
    let xr = b.array_in("xr");
    let xi = b.array_in("xi");
    let yr = b.array_in("yr");
    let yi = b.array_in("yi");
    let ar = b.array_out("ar");
    let ai = b.array_out("ai");
    let lxr = b.load("LXR", xr, 0);
    let lxi = b.load("LXI", xi, 0);
    let lyr = b.load("LYR", yr, 0);
    let lyi = b.load("LYI", yi, 0);
    let m1 = b.mul("M1", lyr.now(), wr);
    let m2 = b.mul("M2", lyi.now(), wi);
    let m3 = b.mul("M3", lyi.now(), wr);
    let m4 = b.mul("M4", lyr.now(), wi);
    let tr = b.sub("TR", m1.now(), m2.now());
    let ti = b.add("TI", m3.now(), m4.now());
    let sr = b.add("SR", lxr.now(), tr.now());
    let si = b.add("SI", lxi.now(), ti.now());
    b.store("SAR", ar, 0, sr.now());
    b.store("SAI", ai, 0, si.now());
    done(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf_machine::Machine;
    use ncdrf_sched::{modulo_schedule, verify};

    #[test]
    fn all_stencils_schedule_and_verify() {
        let machine = Machine::clustered(6, 1);
        for k in [
            stencil3(),
            stencil5(),
            fir4(),
            heat(),
            wave(),
            cmul(),
            butterfly(),
        ] {
            let sched = modulo_schedule(&k, &machine)
                .unwrap_or_else(|e| panic!("{} failed: {e}", k.name()));
            verify(&k, &machine, &sched).unwrap();
        }
    }

    #[test]
    fn stencil5_is_load_bound() {
        // 5 loads + 1 store over 2 mem ports: ResMII >= 3.
        use ncdrf_sched::res_mii;
        let machine = Machine::clustered(3, 1);
        assert!(res_mii(&stencil5(), &machine).unwrap() >= 3);
    }
}
