//! Corpus assembly: the loop population the experiments sweep.

use crate::generator::{generate_many, GenConfig};
use crate::kernels;
use crate::weights::assign_weights;
use ncdrf_ddg::{Loop, LoopStats};
use serde::{Deserialize, Serialize};

/// The benchmark corpus: a named, ordered collection of weighted loops.
///
/// # Example
///
/// ```
/// use ncdrf_corpus::Corpus;
///
/// let c = Corpus::small(); // fast subset for tests/examples
/// assert!(c.len() > 40);
/// let total: u64 = c.loops().iter().map(|l| l.weight().iterations()).sum();
/// assert!(total > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    name: String,
    loops: Vec<Loop>,
}

/// Seed of the standard corpus (weights and generated loops).
pub const STANDARD_SEED: u64 = 19950122; // HPCA'95 opened January 22, 1995.

impl Corpus {
    /// Builds a corpus from explicit loops.
    pub fn from_loops(name: impl Into<String>, loops: Vec<Loop>) -> Self {
        Corpus {
            name: name.into(),
            loops,
        }
    }

    /// The **standard corpus**: 795 loops — the 53 named kernels plus 742
    /// generated loops drawn from the default / deep / wide / recurrent
    /// generator profiles — with heavy-tailed execution weights. Matches
    /// the population size of the paper ("almost 800 loops").
    pub fn standard() -> Self {
        Self::sized("standard", 795, STANDARD_SEED)
    }

    /// A small corpus (the named kernels + 60 generated loops) for tests,
    /// examples and quick experiment runs.
    pub fn small() -> Self {
        Self::sized("small", kernels::all().len() + 60, STANDARD_SEED)
    }

    /// A corpus of exactly `total` loops (named kernels first, generated
    /// loops after), weighted deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `total` is smaller than the named-kernel count.
    pub fn sized(name: impl Into<String>, total: usize, seed: u64) -> Self {
        let named = kernels::all();
        assert!(
            total >= named.len(),
            "corpus must include the {} named kernels",
            named.len()
        );
        let remaining = total - named.len();
        let mut loops = named;
        // Split generated loops across the four structural profiles.
        let quarters = [
            (GenConfig::default(), remaining.div_ceil(4)),
            (GenConfig::deep(), (remaining + 2) / 4),
            (GenConfig::wide(), (remaining + 1) / 4),
            (GenConfig::recurrent(), remaining / 4),
        ];
        let mut base = seed;
        for (cfg, count) in quarters {
            loops.extend(generate_many(base, count, &cfg));
            base = base.wrapping_add(count as u64).wrapping_add(7919);
        }
        debug_assert_eq!(loops.len(), total);
        Corpus {
            name: name.into(),
            loops: assign_weights(loops, seed ^ 0x5741_4E44), // "WAND"
        }
    }

    /// The corpus name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The loops, in a fixed order.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Iterator over the loops.
    pub fn iter(&self) -> std::slice::Iter<'_, Loop> {
        self.loops.iter()
    }

    /// Retains only loops satisfying `keep` (mirrors the paper's §5.1
    /// selection: FP loops with one basic block — ours satisfy both by
    /// construction, but downstream studies filter further, e.g. by op
    /// count).
    pub fn filter<F: FnMut(&Loop) -> bool>(&self, mut keep: F) -> Corpus {
        Corpus {
            name: format!("{}-filtered", self.name),
            loops: self.loops.iter().filter(|l| keep(l)).cloned().collect(),
        }
    }

    /// Takes the first `n` loops (cheap deterministic subset).
    pub fn take(&self, n: usize) -> Corpus {
        Corpus {
            name: format!("{}-take{n}", self.name),
            loops: self.loops.iter().take(n).cloned().collect(),
        }
    }

    /// Aggregate structural statistics (op-mix totals over all loops).
    pub fn stats(&self) -> CorpusStats {
        let mut s = CorpusStats::default();
        for l in &self.loops {
            let ls: LoopStats = l.stats();
            s.loops += 1;
            s.ops += ls.ops;
            s.adds += ls.adds;
            s.muls += ls.muls;
            s.loads += ls.loads;
            s.stores += ls.stores;
            s.recurrent_loops += usize::from(ls.recurrences > 0);
            s.max_ops = s.max_ops.max(ls.ops);
            s.total_iterations += l.weight().iterations() as u128;
        }
        s
    }
}

impl<'a> IntoIterator for &'a Corpus {
    type Item = &'a Loop;
    type IntoIter = std::slice::Iter<'a, Loop>;

    fn into_iter(self) -> Self::IntoIter {
        self.loops.iter()
    }
}

/// Aggregate statistics of a corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Loop count.
    pub loops: usize,
    /// Total operations.
    pub ops: usize,
    /// Adder-class operations.
    pub adds: usize,
    /// Multiplier-class operations.
    pub muls: usize,
    /// Loads.
    pub loads: usize,
    /// Stores.
    pub stores: usize,
    /// Loops containing at least one recurrence.
    pub recurrent_loops: usize,
    /// Largest loop body.
    pub max_ops: usize,
    /// Total weighted iterations.
    pub total_iterations: u128,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn standard_corpus_has_795_loops() {
        let c = Corpus::standard();
        assert_eq!(c.len(), 795);
    }

    #[test]
    fn standard_corpus_is_deterministic() {
        assert_eq!(Corpus::standard(), Corpus::standard());
    }

    #[test]
    fn names_are_unique_across_the_corpus() {
        let c = Corpus::standard();
        let names: HashSet<_> = c.iter().map(|l| l.name().to_owned()).collect();
        assert_eq!(names.len(), c.len());
    }

    #[test]
    fn small_is_a_prefix_superset_of_kernels() {
        let c = Corpus::small();
        let named = crate::kernels::all();
        for (a, b) in c.loops().iter().zip(&named) {
            assert_eq!(a.name(), b.name());
        }
    }

    #[test]
    fn filter_and_take() {
        let c = Corpus::small();
        let big = c.filter(|l| l.ops().len() >= 10);
        assert!(big.len() < c.len());
        assert!(big.iter().all(|l| l.ops().len() >= 10));
        assert_eq!(c.take(5).len(), 5);
    }

    #[test]
    fn stats_add_up() {
        let c = Corpus::small();
        let s = c.stats();
        assert_eq!(s.loops, c.len());
        assert_eq!(s.ops, s.adds + s.muls + s.loads + s.stores);
        assert!(s.recurrent_loops > 0);
        assert!(s.total_iterations > 0);
    }

    #[test]
    fn all_weights_are_nontrivial() {
        let c = Corpus::small();
        assert!(c.iter().all(|l| l.weight().iterations() > 1));
    }
}
