//! The benchmark corpus of the NCDRF reproduction.
//!
//! The paper evaluated ~795 floating-point single-basic-block inner loops
//! from the Perfect Club suite, extracted from optimized R3000 assembler
//! with a custom tool and weighted by CONVEX CXpa profiles (§5.1). Neither
//! the tool nor the profiles survive, so this crate rebuilds the
//! *population*, preserving what the experiments actually consume:
//!
//! * [`kernels`] — 53 hand-written classic kernels (BLAS-1, SPEC89-Fortran style,
//!   Livermore-loop fragments, stencils/filters, recurrence and ILP
//!   stress loops), each a valid executable [`ncdrf_ddg::Loop`];
//! * [`generate`]/[`GenConfig`] — a seeded random loop generator spanning
//!   the same structural axes the paper's loops vary (op count and mix,
//!   memory ratio, recurrences, chain depth);
//! * [`assign_weights`] — heavy-tailed deterministic execution weights
//!   standing in for the profiler;
//! * [`Corpus`] — assembly, filtering and statistics;
//!   [`Corpus::standard`] is the 795-loop population used by the
//!   experiment drivers, [`Corpus::small`] a fast subset.
//!
//! # Example
//!
//! ```
//! use ncdrf_corpus::{Corpus, kernels};
//!
//! let c = Corpus::small();
//! assert_eq!(c.loops()[0].name(), "daxpy");
//! assert_eq!(kernels::all().len(), 53);
//! ```

#![warn(missing_docs)]

mod corpus;
mod generator;
pub mod kernels;
mod weights;

pub use corpus::{Corpus, CorpusStats, STANDARD_SEED};
pub use generator::{generate, generate_many, GenConfig};
pub use weights::assign_weights;
