//! A seeded synthetic loop generator.
//!
//! The paper's population — 795 floating-point single-basic-block inner
//! loops extracted from the Perfect Club by a custom R3000-assembler tool —
//! is not recoverable. What the experiments actually consume, however, is
//! only each loop's *dependence graph shape*: operation count, operation
//! mix, memory-access ratio, recurrences and critical-path form. This
//! generator produces valid, executable loops across exactly those axes,
//! deterministically from a seed, so the corpus is reproducible bit for
//! bit.

use ncdrf_ddg::{Loop, LoopBuilder, OpId, ValueRef, Weight};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Structural knobs of the generator.
///
/// The default configuration covers the spread observed in scientific
/// inner loops: 2–18 arithmetic operations, 1–5 loads, occasional
/// recurrences and divisions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenConfig {
    /// Minimum arithmetic (non-memory) operations.
    pub min_arith: usize,
    /// Maximum arithmetic operations (inclusive).
    pub max_arith: usize,
    /// Minimum loads.
    pub min_loads: usize,
    /// Maximum loads (inclusive).
    pub max_loads: usize,
    /// Maximum extra stores beyond the mandatory sink store.
    pub max_extra_stores: usize,
    /// Probability that a binary operation closes a self-recurrence.
    pub recurrence_prob: f64,
    /// Maximum recurrence distance (Ω).
    pub max_recurrence_dist: u32,
    /// Probability weights of (add, sub, mul, div, conv).
    pub kind_weights: [f64; 5],
    /// Largest absolute affine offset of loads.
    pub max_offset: i64,
    /// Probability that an operand reuses the most recent value (chain
    /// bias); otherwise a uniform pool pick.
    pub chain_bias: f64,
    /// Number of loop-invariant inputs available as operands.
    pub invariants: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            min_arith: 2,
            max_arith: 18,
            min_loads: 1,
            max_loads: 5,
            max_extra_stores: 2,
            recurrence_prob: 0.18,
            max_recurrence_dist: 2,
            kind_weights: [0.34, 0.14, 0.32, 0.06, 0.14],
            max_offset: 4,
            chain_bias: 0.55,
            invariants: 3,
        }
    }
}

impl GenConfig {
    /// A configuration biased toward deep dependence chains (long
    /// lifetimes, high pressure at small II).
    pub fn deep() -> Self {
        GenConfig {
            min_arith: 6,
            max_arith: 24,
            chain_bias: 0.9,
            recurrence_prob: 0.08,
            ..GenConfig::default()
        }
    }

    /// A configuration biased toward wide, independent computation
    /// (high ILP, many parallel lifetimes).
    pub fn wide() -> Self {
        GenConfig {
            min_arith: 6,
            max_arith: 24,
            min_loads: 3,
            max_loads: 8,
            chain_bias: 0.15,
            recurrence_prob: 0.05,
            ..GenConfig::default()
        }
    }

    /// A configuration biased toward recurrences (RecMII-bound loops).
    pub fn recurrent() -> Self {
        GenConfig {
            recurrence_prob: 0.45,
            max_recurrence_dist: 3,
            ..GenConfig::default()
        }
    }
}

/// Value pool with consumption tracking: guarantees the generated graph
/// has no dead values by funnelling whatever remains unconsumed into a
/// final reduction tree.
struct Pool {
    values: Vec<OpId>,
    consumed: Vec<bool>,
}

impl Pool {
    fn new() -> Self {
        Pool {
            values: Vec::new(),
            consumed: Vec::new(),
        }
    }

    fn push(&mut self, id: OpId) {
        self.values.push(id);
        self.consumed.push(false);
    }

    fn take_last(&mut self) -> ValueRef {
        let i = self.values.len() - 1;
        self.consumed[i] = true;
        self.values[i].now()
    }

    fn take_at(&mut self, i: usize) -> ValueRef {
        self.consumed[i] = true;
        self.values[i].now()
    }

    fn len(&self) -> usize {
        self.values.len()
    }

    fn dangling(&self) -> Vec<ValueRef> {
        self.values
            .iter()
            .zip(&self.consumed)
            .filter(|(_, &c)| !c)
            .map(|(&id, _)| id.now())
            .collect()
    }
}

/// Generates one loop named `name` from the given seed.
///
/// The result is always structurally valid: operands reference earlier
/// operations (or the op itself at distance ≥ 1), and a reduction tree
/// feeds every otherwise-unconsumed value into a final store.
pub fn generate(name: impl Into<String>, seed: u64, config: &GenConfig) -> Loop {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = LoopBuilder::new(name);

    let invs: Vec<ValueRef> = (0..config.invariants.max(1))
        .map(|i| {
            let v = rng.gen_range(-4.0..4.0_f64);
            let v = if v.abs() < 0.25 { 0.5 } else { v };
            b.invariant(format!("c{i}"), v)
        })
        .collect();

    // Loads over 1-3 input arrays.
    let n_loads = rng.gen_range(config.min_loads..=config.max_loads.max(config.min_loads));
    let n_arrays = rng.gen_range(1..=3usize.min(n_loads.max(1)));
    let arrays: Vec<_> = (0..n_arrays)
        .map(|i| b.array_in(format!("in{i}")))
        .collect();
    let mut pool = Pool::new();
    for i in 0..n_loads {
        let arr = arrays[rng.gen_range(0..arrays.len())];
        let off = rng.gen_range(-config.max_offset..=config.max_offset);
        pool.push(b.load(format!("L{i}"), arr, off));
    }

    // Arithmetic body.
    let n_arith = rng.gen_range(config.min_arith..=config.max_arith.max(config.min_arith));
    for i in 0..n_arith {
        let kind = pick_kind(&mut rng, &config.kind_weights);
        let a = pick_operand(&mut rng, &mut pool, &invs, config.chain_bias);
        let id = match kind {
            4 => b.conv(format!("C{i}"), a),
            k => {
                if rng.gen_bool(config.recurrence_prob) {
                    let dist = rng.gen_range(1..=config.max_recurrence_dist.max(1));
                    let id = match k {
                        0 => b.reserve_add(format!("R{i}")),
                        1 => b.reserve_sub(format!("R{i}")),
                        2 => b.reserve_mul(format!("R{i}")),
                        _ => b.reserve_div(format!("R{i}")),
                    };
                    b.bind(id, [a, id.prev(dist)]);
                    b.set_init(id, rng.gen_range(0.5..2.0));
                    id
                } else {
                    let c = pick_operand(&mut rng, &mut pool, &invs, config.chain_bias);
                    match k {
                        0 => b.add(format!("O{i}"), a, c),
                        1 => b.sub(format!("O{i}"), a, c),
                        2 => b.mul(format!("O{i}"), a, c),
                        _ => b.div(format!("O{i}"), a, c),
                    }
                }
            }
        };
        pool.push(id);
    }

    // Extra stores of random live values.
    let n_extra = rng.gen_range(0..=config.max_extra_stores);
    for s in 0..n_extra {
        let i = rng.gen_range(0..pool.len());
        let v = pool.take_at(i);
        let out = b.array_out(format!("out{s}"));
        b.store(format!("S{s}"), out, 0, v);
    }

    // Reduction tree over every unconsumed value, stored to the sink.
    let mut dangling = pool.dangling();
    if dangling.is_empty() {
        dangling.push(pool.take_last());
    }
    let mut t = 0usize;
    while dangling.len() > 1 {
        let mut next = Vec::new();
        for pair in dangling.chunks(2) {
            if pair.len() == 2 {
                let a = b.add(format!("T{t}"), pair[0], pair[1]);
                t += 1;
                next.push(a.now());
            } else {
                next.push(pair[0]);
            }
        }
        dangling = next;
    }
    let sink = b.array_out("sink");
    b.store("SK", sink, 0, dangling[0]);

    b.finish(Weight::default())
        .expect("generator emits structurally valid loops")
}

/// Generates `count` loops named `gen<seed>` with consecutive seeds.
pub fn generate_many(base_seed: u64, count: usize, config: &GenConfig) -> Vec<Loop> {
    (0..count)
        .map(|i| {
            generate(
                format!("gen{:04}", base_seed as usize + i),
                base_seed + i as u64,
                config,
            )
        })
        .collect()
}

fn pick_kind(rng: &mut StdRng, weights: &[f64; 5]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    0
}

fn pick_operand(rng: &mut StdRng, pool: &mut Pool, invs: &[ValueRef], chain_bias: f64) -> ValueRef {
    if pool.len() > 0 && rng.gen_bool(chain_bias) {
        pool.take_last()
    } else if pool.len() > 0 && rng.gen_bool(0.85) {
        let i = rng.gen_range(0..pool.len());
        pool.take_at(i)
    } else {
        invs[rng.gen_range(0..invs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf_machine::Machine;
    use ncdrf_sched::{modulo_schedule, verify};

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = generate("g", 42, &cfg);
        let b = generate("g", 42, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GenConfig::default();
        let a = generate("g", 1, &cfg);
        let b = generate("g", 2, &cfg);
        assert_ne!(a, b);
    }

    #[test]
    fn generated_loops_schedule_and_verify() {
        let cfg = GenConfig::default();
        let machine = Machine::clustered(3, 1);
        for l in generate_many(100, 40, &cfg) {
            let sched = modulo_schedule(&l, &machine)
                .unwrap_or_else(|e| panic!("{} failed: {e}", l.name()));
            verify(&l, &machine, &sched).unwrap();
        }
    }

    #[test]
    fn presets_produce_distinct_shapes() {
        let depth_sum = |cfg: &GenConfig| -> usize {
            generate_many(7, 20, cfg)
                .iter()
                .map(|l| l.stats().body_depth)
                .sum()
        };
        let deep = depth_sum(&GenConfig::deep());
        let wide = depth_sum(&GenConfig::wide());
        assert!(
            deep > wide,
            "deep config should produce longer chains ({deep} vs {wide})"
        );
    }

    #[test]
    fn recurrent_preset_has_more_recurrences() {
        let count = |cfg: &GenConfig| -> usize {
            generate_many(11, 30, cfg)
                .iter()
                .map(|l| l.stats().recurrences)
                .sum()
        };
        assert!(count(&GenConfig::recurrent()) > count(&GenConfig::wide()));
    }

    #[test]
    fn generated_loops_execute_equivalently() {
        use ncdrf_regalloc::{allocate_unified, lifetimes};
        let cfg = GenConfig::default();
        let machine = Machine::clustered(3, 1);
        for l in generate_many(500, 10, &cfg) {
            let sched = modulo_schedule(&l, &machine).unwrap();
            let lts = lifetimes(&l, &machine, &sched).unwrap();
            let alloc = allocate_unified(&lts, sched.ii());
            let binding = ncdrf_vliw::Binding::unified(&lts, &alloc);
            ncdrf_vliw::check_equivalence(&l, &machine, &sched, &binding, 12)
                .unwrap_or_else(|e| panic!("{}: {e}", l.name()));
        }
    }
}
