//! Deterministic execution weights for the dynamic (cycle-weighted)
//! figures.
//!
//! The paper weighted each loop by its measured execution time (CONVEX
//! CXpa profiles). Only *relative* weights matter for Figures 7–9, so we
//! draw trip and invocation counts from a seeded log-normal-like
//! distribution — heavy-tailed, as loop trip counts in scientific codes
//! are — making a small set of loops dominate total execution time, as in
//! the paper.

use ncdrf_ddg::{Loop, Weight};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws one log-normal sample `exp(mu + sigma * z)` using a Box–Muller
/// transform over the generator's uniforms.
fn log_normal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (mu + sigma * z).exp()
}

/// Assigns a deterministic execution weight to each loop, derived from
/// `seed` and the loop's position: trip counts are log-normal around ~100
/// iterations, invocation counts log-normal around ~20 calls.
pub fn assign_weights(loops: Vec<Loop>, seed: u64) -> Vec<Loop> {
    let mut rng = StdRng::seed_from_u64(seed);
    loops
        .into_iter()
        .map(|l| {
            let trip = log_normal(&mut rng, 100f64.ln(), 1.2).clamp(4.0, 100_000.0) as u64;
            let calls = log_normal(&mut rng, 20f64.ln(), 1.0).clamp(1.0, 10_000.0) as u64;
            l.with_weight(Weight::new(trip, calls))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncdrf_ddg::LoopBuilder;

    fn tiny(name: &str) -> Loop {
        let mut b = LoopBuilder::new(name);
        let x = b.array_in("x");
        let z = b.array_out("z");
        let l = b.load("L", x, 0);
        b.store("S", z, 0, l.now());
        b.finish(Weight::default()).unwrap()
    }

    #[test]
    fn weights_are_deterministic() {
        let ls: Vec<Loop> = (0..10).map(|i| tiny(&format!("l{i}"))).collect();
        let a = assign_weights(ls.clone(), 5);
        let b = assign_weights(ls, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.weight(), y.weight());
        }
    }

    #[test]
    fn weights_are_heavy_tailed() {
        let ls: Vec<Loop> = (0..400).map(|i| tiny(&format!("l{i}"))).collect();
        let ws = assign_weights(ls, 9);
        let mut iters: Vec<u64> = ws.iter().map(|l| l.weight().iterations()).collect();
        iters.sort_unstable_by(|a, b| b.cmp(a));
        let total: u128 = iters.iter().map(|&x| x as u128).sum();
        let top_decile: u128 = iters[..40].iter().map(|&x| x as u128).sum();
        assert!(
            top_decile * 2 > total,
            "top 10% of loops should dominate execution time"
        );
    }

    #[test]
    fn weights_stay_in_bounds() {
        let ls: Vec<Loop> = (0..200).map(|i| tiny(&format!("l{i}"))).collect();
        for l in assign_weights(ls, 3) {
            assert!(l.weight().trip >= 4);
            assert!(l.weight().calls >= 1);
            assert!(l.weight().iterations() <= 1_000_000_000);
        }
    }
}
