//! The §3.2 hardware story: why dual register files at all.
//!
//! Compares area, access time and operand-encoding bits of a unified
//! file, a consistent dual file (POWER2-style) and the paper's
//! non-consistent dual file, across sizes — reproducing the paper's §6
//! claim that the NCDRF is cheaper than doubling the register count and
//! no slower than the consistent dual implementation trick.
//!
//! Run with `cargo run --example hw_cost`.

use ncdrf::machine::RegFileOrg;

fn main() {
    const BITS: u32 = 64;
    const READS: u32 = 8;
    const WRITES: u32 = 4;

    println!("register-file cost model (64-bit registers, 8R/4W ports)");
    println!(
        "{:<28} {:>6} {:>12} {:>10} {:>8}",
        "organisation", "regs", "area", "access", "op bits"
    );
    for regs in [32, 64, 128] {
        let rows = [
            (
                "unified",
                RegFileOrg::Unified {
                    registers: regs,
                    read_ports: READS,
                    write_ports: WRITES,
                },
            ),
            (
                "consistent dual",
                RegFileOrg::ConsistentDual {
                    registers: regs,
                    read_ports: READS,
                    write_ports: WRITES,
                },
            ),
            (
                "non-consistent dual",
                RegFileOrg::NonConsistentDual {
                    registers: regs,
                    read_ports: READS,
                    write_ports: WRITES,
                },
            ),
        ];
        for (name, org) in rows {
            let c = org.cost(BITS);
            println!(
                "{:<28} {:>6} {:>12.0} {:>10.3} {:>8}",
                name, regs, c.area, c.access_time, c.operand_bits
            );
        }
        println!();
    }

    // The paper's bottom line (§6): an NCDRF with R registers per subfile
    // vs a unified file with 2R registers.
    let ncdrf = RegFileOrg::NonConsistentDual {
        registers: 32,
        read_ports: READS,
        write_ports: WRITES,
    }
    .cost(BITS);
    let doubled = RegFileOrg::Unified {
        registers: 64,
        read_ports: READS,
        write_ports: WRITES,
    }
    .cost(BITS);
    println!("NCDRF 2x32 vs unified 64:");
    println!(
        "  area      {:>10.0} vs {:>10.0}  ({:.0}% of doubling)",
        ncdrf.area,
        doubled.area,
        100.0 * ncdrf.area / doubled.area
    );
    println!(
        "  access    {:>10.3} vs {:>10.3}",
        ncdrf.access_time, doubled.access_time
    );
    println!(
        "  operand bits {:>6} vs {:>6}",
        ncdrf.operand_bits, doubled.operand_bits
    );
}
