//! Explore the benchmark corpus: composition, register-pressure
//! distributions, and the most pressured loops.
//!
//! Run with `cargo run --release --example corpus_explorer [--standard]`.

use ncdrf::corpus::Corpus;
use ncdrf::machine::Machine;
use ncdrf::{Cumulative, Model, Observation, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let standard = std::env::args().any(|a| a == "--standard");
    let corpus = if standard {
        Corpus::standard()
    } else {
        Corpus::small()
    };
    let stats = corpus.stats();
    println!("corpus `{}`: {} loops", corpus.name(), stats.loops);
    println!(
        "  ops {} (adds {} muls {} loads {} stores {}), {} loops with recurrences",
        stats.ops, stats.adds, stats.muls, stats.loads, stats.stores, stats.recurrent_loops
    );
    println!(
        "  largest body {} ops, total weighted iterations {}\n",
        stats.max_ops, stats.total_iterations
    );

    let session = Session::new(Machine::clustered(3, 1));
    let rows = session.analyze_corpus(&corpus, Model::Unified)?;

    // Static distribution of register requirements.
    let obs: Vec<Observation> = rows
        .iter()
        .map(|r| Observation {
            regs: r.regs,
            weight: 1.0,
        })
        .collect();
    let dist = Cumulative::new(&[8, 16, 32, 64, 128], &obs);
    println!("unified register requirements (latency 3):");
    for (p, pct) in dist.points.iter().zip(&dist.percent) {
        println!("  <= {p:>3} registers: {pct:>5.1}% of loops");
    }

    // The most pressured loops.
    let mut by_regs = rows.clone();
    by_regs.sort_by_key(|r| std::cmp::Reverse(r.regs));
    println!("\nmost pressured loops:");
    for r in by_regs.iter().take(8) {
        println!("  {:<24} II {:>2} regs {:>3}", r.name, r.ii, r.regs);
    }
    Ok(())
}
