//! Quickstart: schedule one loop, compare the register requirement of all
//! four models, and validate the result by executing the pipelined loop
//! against a sequential reference.
//!
//! Run with `cargo run --example quickstart`.

use ncdrf::corpus::kernels;
use ncdrf::machine::Machine;
use ncdrf::regalloc::{allocate_unified, lifetimes};
use ncdrf::sched::modulo_schedule;
use ncdrf::vliw::{check_equivalence, Binding};
use ncdrf::{analyze, Model, PipelineOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Livermore "hydro fragment": x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]).
    let l = kernels::livermore::hydro();
    println!("{l}");

    // The paper's clustered evaluation machine: per cluster 1 adder +
    // 1 multiplier (latency 3) + 1 load/store unit (latency 1).
    let machine = Machine::clustered(3, 1);
    println!("machine: {machine}\n");

    let opts = PipelineOptions::default();
    println!("{:<14} {:>4} {:>6}", "model", "II", "regs");
    for model in Model::all() {
        let a = analyze(&l, &machine, model, &opts)?;
        println!("{:<14} {:>4} {:>6}", model.to_string(), a.ii, a.regs);
    }

    // Every schedule + allocation is validated by execution: the pipelined
    // run must produce bit-identical memory to a sequential evaluation.
    let sched = modulo_schedule(&l, &machine)?;
    let lts = lifetimes(&l, &machine, &sched)?;
    let alloc = allocate_unified(&lts, sched.ii());
    let run = check_equivalence(&l, &machine, &sched, &Binding::unified(&lts, &alloc), 100)?;
    println!(
        "\nexecuted 100 iterations in {} cycles ({} memory accesses, bus density {:.2})",
        run.cycles,
        run.bus.accesses,
        run.bus.density()
    );
    Ok(())
}
