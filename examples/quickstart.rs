//! Quickstart: open a session, compare the register requirement of all
//! four models on one loop (scheduling it once), and validate the result
//! by executing the pipelined loop against a sequential reference.
//!
//! Run with `cargo run --example quickstart`.

use ncdrf::corpus::kernels;
use ncdrf::machine::Machine;
use ncdrf::regalloc::allocate_unified;
use ncdrf::vliw::{check_equivalence, Binding};
use ncdrf::{Model, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Livermore "hydro fragment": x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]).
    let l = kernels::livermore::hydro();
    println!("{l}");

    // The paper's clustered evaluation machine: per cluster 1 adder +
    // 1 multiplier (latency 3) + 1 load/store unit (latency 1).
    let machine = Machine::clustered(3, 1);
    println!("machine: {machine}\n");

    // A session schedules each loop once; the four models share the run.
    let session = Session::new(machine.clone());
    println!("{:<14} {:>4} {:>6}", "model", "II", "regs");
    for model in Model::all() {
        let a = session.analyze(&l, model)?;
        println!("{:<14} {:>4} {:>6}", model.to_string(), a.ii, a.regs);
    }
    let stats = session.cache_stats();
    println!(
        "(scheduled {} time(s), {} cache hits)",
        stats.misses, stats.hits
    );

    // Every schedule + allocation is validated by execution: the pipelined
    // run must produce bit-identical memory to a sequential evaluation.
    let base = session.base(&l)?;
    let alloc = allocate_unified(&base.lifetimes, base.sched.ii());
    let run = check_equivalence(
        &l,
        &machine,
        &base.sched,
        &Binding::unified(&base.lifetimes, &alloc),
        100,
    )?;
    println!(
        "\nexecuted 100 iterations in {} cycles ({} memory accesses, bus density {:.2})",
        run.cycles,
        run.bus.accesses,
        run.bus.density()
    );
    Ok(())
}
