//! The paper's §4 worked example, end to end: the Figure 2 loop on the
//! two-cluster machine, the Figure 3/4 schedule, Table 2 lifetimes,
//! Table 3 classification, and Table 4 after swapping.
//!
//! Run with `cargo run --example worked_example`.

use ncdrf::ddg::{LoopBuilder, Weight};
use ncdrf::machine::Machine;
use ncdrf::regalloc::{allocate_dual, allocate_unified, classify, lifetimes, DualPressure};
use ncdrf::sched::{KernelView, ScheduleTable};
use ncdrf::swap::swap_pass;
use ncdrf::{Model, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 2: L1=x[i]; L2=y[i]; M3=L1*r; A4=M3+L2; M5=A4*t; A6=M5+L1;
    // S7: z[i]=A6.
    let mut b = LoopBuilder::new("fig2");
    let r = b.invariant("r", 0.5);
    let t = b.invariant("t", 1.5);
    let x = b.array_in("x");
    let y = b.array_in("y");
    let z = b.array_out("z");
    let l1 = b.load("L1", x, 0);
    let l2 = b.load("L2", y, 0);
    let m3 = b.mul("M3", l1.now(), r);
    let a4 = b.add("A4", m3.now(), l2.now());
    let m5 = b.mul("M5", a4.now(), t);
    let a6 = b.add("A6", m5.now(), l1.now());
    b.store("S7", z, 0, a6.now());
    let l = b.finish(Weight::new(100, 1))?;
    println!("{l}");

    // §4's machine: 2 clusters x (1 adder, 1 multiplier, 2 ld/st).
    let machine = Machine::clustered(3, 2);
    let mut sched = ncdrf::sched::modulo_schedule(&l, &machine)?;
    println!("schedule: II={} stages={}", sched.ii(), sched.stages());
    println!("flat schedule (Figure 3 style; left cluster || right cluster):");
    println!("{}", ScheduleTable::new(&l, &machine, &sched));
    println!("kernel (Figure 4 style):");
    println!("{}", KernelView::new(&l, &machine, &sched));

    // Table 2: lifetimes.
    let lts = lifetimes(&l, &machine, &sched)?;
    println!("lifetimes (Table 2):");
    let mut total = 0;
    for lt in &lts {
        println!(
            "  {:<3} start {:>2} end {:>2} lifetime {:>2}",
            l.op(lt.op).name(),
            lt.start,
            lt.end,
            lt.len()
        );
        total += lt.len();
    }
    println!("  sum of lifetimes: {total}");
    println!(
        "  unified requirement: {}\n",
        allocate_unified(&lts, sched.ii()).regs
    );

    // Table 3: classification and dual requirement before swapping.
    let classes = classify(&l, &machine, &sched, &lts);
    let p = DualPressure::new(&lts, &classes, sched.ii());
    println!(
        "dual pressure before swapping (Table 3): GL {} LO {} RO {} -> max cluster {}",
        p.global,
        p.left,
        p.right,
        p.requirement_bound()
    );
    println!(
        "dual requirement: {}\n",
        allocate_dual(&lts, &classes, sched.ii()).regs
    );

    // Table 4: the greedy swap pass.
    let outcome = swap_pass(&l, &machine, &mut sched)?;
    println!(
        "swapping (Table 4): {} -> {} registers via {} action(s)",
        outcome.before,
        outcome.after,
        outcome.actions.len()
    );
    for a in &outcome.actions {
        println!("  {a}");
    }

    // The facade runs the whole comparison through one session (the
    // schedule is computed once and shared by all four models).
    println!("\nmodel comparison on this loop:");
    let session = Session::new(machine);
    for model in Model::all() {
        let a = session.analyze(&l, model)?;
        println!("  {:<12} II {} regs {}", model.to_string(), a.ii, a.regs);
    }
    Ok(())
}
