//! Spill behaviour under register pressure: sweep the register budget for
//! one pressured loop and watch spills, II and memory traffic respond —
//! the per-loop mechanics behind Figures 8 and 9.
//!
//! Run with `cargo run --example spill_study`.

use ncdrf::corpus::kernels;
use ncdrf::machine::Machine;
use ncdrf::{Model, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let l = kernels::livermore::state(); // a wide 16-op loop
    let session = Session::new(Machine::clustered(6, 1));

    let free = session.analyze(&l, Model::Unified)?;
    println!(
        "loop `{}`: II {} with unlimited registers, unified requirement {}\n",
        l.name(),
        free.ii,
        free.regs
    );

    println!(
        "{:<12} {:>6} {:>4} {:>7} {:>8} {:>9}",
        "model", "budget", "II", "spills", "mem ops", "density"
    );
    for model in Model::finite() {
        for budget in [64, 32, 24, 16, 12] {
            let e = session.evaluate(&l, model, budget)?;
            println!(
                "{:<12} {:>6} {:>4} {:>7} {:>8} {:>9.3}",
                model.to_string(),
                budget,
                e.ii,
                e.spilled,
                e.mem_ops,
                e.density()
            );
        }
        println!();
    }
    let stats = session.cache_stats();
    println!(
        "all {} evaluations shared {} scheduling run(s) of the base loop",
        stats.hits + stats.misses,
        stats.misses
    );
    Ok(())
}
